(** The paper's running example (Example 1/2, Table 1): Alice, Bob,
    Charlie and Dave shopping a 5-item digital-photography store with 3
    display slots.

    The paper reports its objective values "scaled up by 2" at
    λ = 1/2, i.e. as [Σ p + Σ τ]; [paper_scale] converts
    [Config.total_utility] into those units. *)

val alice : int
val bob : int
val charlie : int
val dave : int

val tripod : int
val dslr : int
val psd : int
val memory_card : int
val sp_camera : int

val instance : ?lambda:float -> unit -> Instance.t
(** Default λ = 0.5 (the value used for the worked objective values in
    Example 5). *)

val paper_scale : float
(** 2.0 — multiply [Config.total_utility] at λ = 1/2 by this to match
    the paper's reported numbers. *)

val optimal_config : Instance.t -> Config.t
(** The SAVG 3-configuration at the top of Figure 1(a):
    A ⟨c5,c1,c2⟩, B ⟨c2,c1,c4⟩, C ⟨c5,c3,c4⟩, D ⟨c5,c1,c4⟩. Its
    paper-scaled utility is 10.35 — the proven optimum. *)

val optimal_value : float
(** 10.35 (paper-scaled). *)

val personalized_value : float
(** 8.25 — objective of the personalized configuration of Table 9. *)

val group_value : float
(** 8.35 — objective of the group configuration of Table 9. *)

val subgroup_friendship_value : float
(** 8.4 — subgroup-by-friendship with parts {A,D} / {B,C}. *)

val subgroup_preference_value : float
(** 8.7 — subgroup-by-preference with parts {A,B} / {C,D}. *)

val friendship_parts : int array array
(** The {A,D} / {B,C} split used by Table 9. *)

val preference_parts : int array array
(** The {A,B} / {C,D} split used by Table 9. *)
