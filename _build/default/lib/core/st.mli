(** SVGIC-ST: the extension with teleportation (indirect co-display,
    Definition 4/5) and the subgroup size constraint [M]
    (Section 3.2).

    The LP relaxation of SVGIC-ST coincides with the compact SVGIC
    relaxation (in both, at any optimum the per-pair social mass equals
    [Σ_c w_e(c) · min(x_u^c, x_v^c)]), so the algorithms reuse
    [Relaxation.solve]; the size constraint lives purely in the CSF
    rounding (locking full (item, slot) subgroups), exactly as the
    paper extends AVG. *)

val total_utility : Instance.t -> dtel:float -> Config.t -> float
(** The SVGIC-ST objective: direct co-display contributes [τ] in full,
    indirect co-display (same item at different slots of the two
    friends' VEs) contributes [dtel · τ]. With [dtel = 0] this equals
    the plain SVGIC objective. *)

val violations : Instance.t -> m_cap:int -> Config.t -> int * int
(** [(excess_users, oversized_subgroups)] over all slots: total number
    of users beyond the cap, and the number of (item, slot) subgroups
    whose size exceeds [m_cap]. *)

val feasible : Instance.t -> m_cap:int -> Config.t -> bool

val avg :
  ?advanced_sampling:bool ->
  Svgic_util.Rng.t ->
  Instance.t ->
  Relaxation.t ->
  m_cap:int ->
  Config.t
(** AVG extended for SVGIC-ST: CSF admits users in decreasing
    utility-factor order and locks an (item, slot) pair once [m_cap]
    users view it. The result never violates the size constraint
    (provided [m · m_cap >= n + (k-1)·m_cap], which all experiment
    settings satisfy). *)

val avg_d : ?r:float -> Instance.t -> Relaxation.t -> m_cap:int -> Config.t
(** Deterministic variant with the same CSF extension. *)
