module Graph = Svgic_graph.Graph

let utility_split = Config.utility_split

let intra_inter_pct inst cfg =
  let k = Instance.k inst in
  let pairs = Instance.pairs inst in
  let total = Array.length pairs in
  if total = 0 then (0.0, 0.0)
  else begin
    let intra_sum = ref 0.0 in
    for s = 0 to k - 1 do
      let intra =
        Array.fold_left
          (fun acc (u, v) ->
            if Config.codisplayed cfg ~user:u ~friend:v ~slot:s then acc + 1
            else acc)
          0 pairs
      in
      intra_sum := !intra_sum +. (float_of_int intra /. float_of_int total)
    done;
    let intra = !intra_sum /. float_of_int k in
    (intra, 1.0 -. intra)
  end

let normalized_density inst cfg =
  let k = Instance.k inst in
  let g = Instance.graph inst in
  let base = Graph.density g in
  if base = 0.0 then 0.0
  else begin
    let slot_avg = ref 0.0 in
    for s = 0 to k - 1 do
      let groups = Config.subgroups_at_slot cfg inst s in
      let densities =
        Array.map
          (fun members ->
            if Array.length members < 2 then 0.0
            else Graph.induced_density g members)
          groups
      in
      slot_avg := !slot_avg +. Svgic_util.Stats.mean densities
    done;
    !slot_avg /. float_of_int k /. base
  end

let codisplay_rate inst cfg =
  let k = Instance.k inst in
  let pairs = Instance.pairs inst in
  if Array.length pairs = 0 then 0.0
  else begin
    let shared = ref 0 in
    Array.iter
      (fun (u, v) ->
        let any = ref false in
        for s = 0 to k - 1 do
          if Config.codisplayed cfg ~user:u ~friend:v ~slot:s then any := true
        done;
        if !any then incr shared)
      pairs;
    float_of_int !shared /. float_of_int (Array.length pairs)
  end

let alone_rate inst cfg =
  let n = Instance.n inst and k = Instance.k inst in
  let g = Instance.graph inst in
  let alone = ref 0 in
  for u = 0 to n - 1 do
    let shared = ref false in
    Array.iter
      (fun v ->
        for s = 0 to k - 1 do
          if Config.codisplayed cfg ~user:u ~friend:v ~slot:s then shared := true
        done)
      (Graph.neighbors_undirected g u);
    if not !shared then incr alone
  done;
  float_of_int !alone /. float_of_int n

(* Selfish upper bound for one user: her top-k items scored as if the
   whole friend set co-viewed each (the w̄ of Section 6.5). *)
let selfish_bound inst u =
  let m = Instance.m inst and k = Instance.k inst in
  let lambda = Instance.lambda inst in
  let g = Instance.graph inst in
  let scores =
    Array.init m (fun c ->
        let social =
          Array.fold_left
            (fun acc v -> acc +. Instance.tau inst u v c)
            0.0
            (Graph.out_neighbors g u)
        in
        ((1.0 -. lambda) *. Instance.pref inst u c) +. (lambda *. social))
  in
  let top = Svgic_util.Select.top_k k scores in
  Array.fold_left (fun acc c -> acc +. scores.(c)) 0.0 top

let happiness inst cfg u =
  let bound = selfish_bound inst u in
  if bound <= 0.0 then 1.0
  else Float.min 1.0 (Config.user_utility inst cfg u /. bound)

let regret_ratios inst cfg =
  Array.init (Instance.n inst) (fun u ->
      Float.max 0.0 (1.0 -. happiness inst cfg u))

let regret_cdf inst cfg ~points =
  Svgic_util.Stats.cdf (regret_ratios inst cfg) ~points
