(** Extension C: Multi-View Display (Section 5).

    Each (user, slot) cell holds up to [β] items: the first is the
    default primary view (one per slot, no duplicates across slots —
    constraints (11)–(14) of the extended ILP); the rest are group
    views shared with friends. Co-display at a slot now means both
    users have the item among their views there. *)

type t

val of_config : Config.t -> t
(** Every cell holds exactly its primary view. *)

val views : t -> user:int -> slot:int -> int list
(** Items in a cell, primary first. *)

val primary : t -> user:int -> slot:int -> int

val total_utility : Instance.t -> t -> float
(** The MVD objective: [Σ_u Σ_s Σ_{c ∈ views} (1-λ)·p(u,c) +
    λ·Σ_{v | c ∈ views(v,s)} τ(u,v,c)]. *)

val greedy_enrich : Instance.t -> beta:int -> Config.t -> t
(** Starts from a plain configuration as the primary views and greedily
    adds group views (up to [β] items per cell) while the marginal
    utility is positive. Candidates for a cell are the items currently
    viewed by the user's friends at the same slot — the group views
    exist to join friends' discussions. *)

val exact_ip :
  ?options:Svgic_lp.Branch_bound.options ->
  Instance.t ->
  beta:int ->
  (t * Svgic_lp.Branch_bound.result) option
(** The pairwise instantiation of the extended ILP of Section 5
    (constraints (11)–(14) with per-pair co-display instead of the
    exponential maximal-subgroup variables): binary primary views
    [x(u,c,s)] and view indicators [w(u,c,s)] with at most [β] views
    per cell, solved by branch and bound. Exponentially expensive —
    test oracle for tiny instances. [None] when no incumbent was found
    within the options' budget. *)
