type problem = {
  n : int;
  m : int;
  k : int;
  linear : float array array;
  pairs : (int * int * float array) array;
}

type solution = {
  x : float array array;
  objective : float;
  iterations : int;
}

let objective p x =
  let acc = ref 0.0 in
  for u = 0 to p.n - 1 do
    let lin = p.linear.(u) and xu = x.(u) in
    for c = 0 to p.m - 1 do
      acc := !acc +. (lin.(c) *. xu.(c))
    done
  done;
  Array.iter
    (fun (u, v, w) ->
      let xu = x.(u) and xv = x.(v) in
      for c = 0 to p.m - 1 do
        if w.(c) <> 0.0 then acc := !acc +. (w.(c) *. Float.min xu.(c) xv.(c))
      done)
    p.pairs;
  !acc

(* Logistic weight of the soft-min gradient, numerically stable. *)
let sigmoid z = if z >= 0.0 then 1.0 /. (1.0 +. exp (-.z)) else exp z /. (1.0 +. exp z)

let gradient p ~smoothing x grad =
  for u = 0 to p.n - 1 do
    Array.blit p.linear.(u) 0 grad.(u) 0 p.m
  done;
  Array.iter
    (fun (u, v, w) ->
      let xu = x.(u) and xv = x.(v) in
      let gu = grad.(u) and gv = grad.(v) in
      for c = 0 to p.m - 1 do
        if w.(c) <> 0.0 then begin
          let share_u = sigmoid ((xv.(c) -. xu.(c)) /. smoothing) in
          gu.(c) <- gu.(c) +. (w.(c) *. share_u);
          gv.(c) <- gv.(c) +. (w.(c) *. (1.0 -. share_u))
        end
      done)
    p.pairs;
  ()

(* Linear maximization oracle over the capped simplex: an indicator
   vector of the k largest gradient coordinates. *)
let oracle p grad_row vertex =
  let top = Svgic_util.Select.top_k p.k grad_row in
  Array.fill vertex 0 p.m 0.0;
  Array.iter (fun c -> vertex.(c) <- 1.0) top

let solve ?(iterations = 400) ?(smoothing = 0.05) p =
  assert (p.k >= 1 && p.k <= p.m);
  assert (smoothing > 0.0);
  let x = Array.init p.n (fun _ -> Array.make p.m (float_of_int p.k /. float_of_int p.m)) in
  let grad = Array.init p.n (fun _ -> Array.make p.m 0.0) in
  let vertex = Array.make p.m 0.0 in
  let best = Array.init p.n (fun u -> Array.copy x.(u)) in
  let best_obj = ref (objective p x) in
  for t = 0 to iterations - 1 do
    gradient p ~smoothing x grad;
    let gamma = 2.0 /. float_of_int (t + 2) in
    for u = 0 to p.n - 1 do
      oracle p grad.(u) vertex;
      let xu = x.(u) in
      for c = 0 to p.m - 1 do
        xu.(c) <- ((1.0 -. gamma) *. xu.(c)) +. (gamma *. vertex.(c))
      done
    done;
    let obj = objective p x in
    if obj > !best_obj then begin
      best_obj := obj;
      for u = 0 to p.n - 1 do
        Array.blit x.(u) 0 best.(u) 0 p.m
      done
    end
  done;
  { x = best; objective = !best_obj; iterations }
