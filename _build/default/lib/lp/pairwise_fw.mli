(** Frank–Wolfe solver for the pairwise-concave relaxation shape shared
    by [LP_SIMP] (the compact SVGIC relaxation, Section 4.4 of the
    paper).

    The program solved is
    {v
      max  sum_u <linear_u, x_u> + sum_{(u,v,w)} sum_c w_c * min(x_u_c, x_v_c)
      s.t. x_u in [0,1]^m,  sum_c x_u_c = k          for every user u
    v}
    which is exactly [LP_SIMP] after substituting out the auxiliary
    [y] variables (at any optimum [y = min]). The feasible region is a
    product of capped simplices, so the linear maximization oracle is a
    per-user top-k selection — this is what makes the solver scale to
    the paper's large configurations where a dense simplex tableau
    would not.

    The [min] terms are smoothed with a soft-min of temperature
    [smoothing] to make the objective differentiable; the reported
    solution is the iterate with the best *exact* (unsmoothed)
    objective. The result is a β-approximate fractional solution, which
    Corollary 4.2 of the paper turns into a (4·β)-approximation for the
    rounded configuration. *)

type problem = {
  n : int;  (** users *)
  m : int;  (** items *)
  k : int;  (** slots; requires [k <= m] *)
  linear : float array array;  (** [n x m] scaled preference utilities *)
  pairs : (int * int * float array) array;
      (** undirected pairs [(u, v, w)] with per-item combined social
          weight [w] (length [m]) *)
}

type solution = {
  x : float array array;  (** [n x m] fractional utility factors *)
  objective : float;  (** exact (unsmoothed) objective of [x] *)
  iterations : int;
}

val objective : problem -> float array array -> float
(** Exact objective (with true [min]) of a feasible point. *)

val solve : ?iterations:int -> ?smoothing:float -> problem -> solution
(** [solve p] runs [iterations] (default 400) Frank–Wolfe steps with
    soft-min temperature [smoothing] (default 0.05). *)
