lib/lp/pairwise_fw.mli:
