lib/lp/pairwise_fw.ml: Array Float Svgic_util
