lib/lp/problem.mli: Format
