(** Dense two-phase primal simplex.

    This is the repository's stand-in for the commercial LP solver
    (Gurobi / CPLEX) used by the paper. It solves exactly the programs
    built by [Problem]: maximization, non-negative variables with
    optional upper bounds, [<= / >= / =] rows. Upper bounds are
    compiled to explicit rows, which keeps the implementation simple at
    the cost of tableau size — adequate for the instance sizes the
    exact paths of this repository handle (the large-scale relaxations
    go through [Pairwise_fw] instead). *)

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded

and solution = { x : float array; objective : float; pivots : int }

val solve : ?max_pivots:int -> Problem.t -> status
(** [solve p] runs the two-phase simplex. [max_pivots] (default
    [200_000]) bounds total pivot operations; exceeding it raises
    [Failure] — in practice it indicates a modelling bug, not a hard
    instance. Degeneracy is handled by switching to Bland's rule after
    a stall. *)
