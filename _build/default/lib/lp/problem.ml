type cmp = Le | Ge | Eq

type row = { terms : (int * float) list; cmp : cmp; rhs : float }

type t = {
  mutable objs : float array;
  mutable uppers : float option array;
  mutable names : string array;
  mutable nv : int;
  mutable row_list : row list; (* reversed insertion order *)
  mutable nr : int;
}

let create () =
  { objs = [||]; uppers = [||]; names = [||]; nv = 0; row_list = []; nr = 0 }

let grow t =
  let cap = Array.length t.objs in
  if t.nv >= cap then begin
    let ncap = max 16 (2 * cap) in
    let objs = Array.make ncap 0.0 in
    let uppers = Array.make ncap None in
    let names = Array.make ncap "" in
    Array.blit t.objs 0 objs 0 t.nv;
    Array.blit t.uppers 0 uppers 0 t.nv;
    Array.blit t.names 0 names 0 t.nv;
    t.objs <- objs;
    t.uppers <- uppers;
    t.names <- names
  end

let add_var t ?upper ~obj name =
  grow t;
  let idx = t.nv in
  t.objs.(idx) <- obj;
  t.uppers.(idx) <- upper;
  t.names.(idx) <- name;
  t.nv <- t.nv + 1;
  idx

let add_row t terms cmp rhs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nv then invalid_arg "Problem.add_row: unknown variable")
    terms;
  t.row_list <- { terms; cmp; rhs } :: t.row_list;
  t.nr <- t.nr + 1

let clone t =
  {
    objs = Array.copy t.objs;
    uppers = Array.copy t.uppers;
    names = Array.copy t.names;
    nv = t.nv;
    row_list = t.row_list;
    nr = t.nr;
  }

let set_upper t v upper =
  if v < 0 || v >= t.nv then invalid_arg "Problem.set_upper: unknown variable";
  t.uppers.(v) <- upper

let num_vars t = t.nv
let num_rows t = t.nr
let objective t = Array.sub t.objs 0 t.nv
let upper_bound t i = t.uppers.(i)
let var_name t i = t.names.(i)
let rows t = Array.of_list (List.rev t.row_list)

let eval_objective t x =
  let acc = ref 0.0 in
  for i = 0 to t.nv - 1 do
    acc := !acc +. (t.objs.(i) *. x.(i))
  done;
  !acc

let row_value row x =
  List.fold_left (fun acc (v, coeff) -> acc +. (coeff *. x.(v))) 0.0 row.terms

let check_feasible ?(eps = 1e-6) t x =
  let bounds_ok = ref true in
  for i = 0 to t.nv - 1 do
    if x.(i) < -.eps then bounds_ok := false;
    (match t.uppers.(i) with
    | Some u when x.(i) > u +. eps -> bounds_ok := false
    | Some _ | None -> ())
  done;
  !bounds_ok
  && List.for_all
       (fun row ->
         let v = row_value row x in
         match row.cmp with
         | Le -> v <= row.rhs +. eps
         | Ge -> v >= row.rhs -. eps
         | Eq -> Float.abs (v -. row.rhs) <= eps)
       t.row_list

let pp ppf t =
  Format.fprintf ppf "@[<v>max ";
  for i = 0 to t.nv - 1 do
    if t.objs.(i) <> 0.0 then
      Format.fprintf ppf "%+g %s " t.objs.(i) t.names.(i)
  done;
  Format.fprintf ppf "@,subject to:@,";
  List.iter
    (fun row ->
      List.iter
        (fun (v, coeff) -> Format.fprintf ppf "%+g %s " coeff t.names.(v))
        row.terms;
      let op = match row.cmp with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf ppf "%s %g@," op row.rhs)
    (List.rev t.row_list);
  for i = 0 to t.nv - 1 do
    match t.uppers.(i) with
    | Some u -> Format.fprintf ppf "0 <= %s <= %g@," t.names.(i) u
    | None -> ()
  done;
  Format.fprintf ppf "@]"
