(** Linear-program description shared by the simplex solver and the
    branch-and-bound ILP solver.

    Conventions: all variables are non-negative, each may carry an
    optional finite upper bound, and the objective is always
    *maximized*. Constraint rows are sparse lists of
    (variable, coefficient) terms. *)

type cmp = Le | Ge | Eq

type row = { terms : (int * float) list; cmp : cmp; rhs : float }

type t

val create : unit -> t

val add_var : t -> ?upper:float -> obj:float -> string -> int
(** [add_var t ?upper ~obj name] registers a variable and returns its
    index. [name] is used only for debugging output. *)

val add_row : t -> (int * float) list -> cmp -> float -> unit
(** Adds a constraint row. Raises [Invalid_argument] if a term
    references an unknown variable. *)

val clone : t -> t
(** Independent copy; used by branch-and-bound to add node-local
    fixing rows without disturbing the base program. *)

val set_upper : t -> int -> float option -> unit
(** Replaces a variable's upper bound (fixing a binary to 0 is
    [set_upper t v (Some 0.)]). *)

val num_vars : t -> int
val num_rows : t -> int
val objective : t -> float array
(** Objective coefficient per variable (copy). *)

val upper_bound : t -> int -> float option
val var_name : t -> int -> string
val rows : t -> row array
(** All rows (copy of the internal order). *)

val eval_objective : t -> float array -> float
(** Objective value of a point (no feasibility check). *)

val check_feasible : ?eps:float -> t -> float array -> bool
(** Verifies bounds and rows within tolerance [eps] (default 1e-6). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, for debugging small programs. *)
