(* Extension F: a dynamic VR shopping session — shoppers join and leave
   while the store keeps the configuration consistent, with incremental
   (greedy CSF-style) handling of each event and an occasional full
   re-optimization.

   Run with: dune exec examples/dynamic_session.exe *)

module Rng = Svgic_util.Rng
module Dynamic = Svgic.Dynamic

let () =
  let rng = Rng.create 31337 in
  let inst =
    Svgic_data.Datasets.make Svgic_data.Datasets.Timik rng ~n:12 ~m:30 ~k:4
      ~lambda:0.5
  in
  let session = Dynamic.start rng inst in
  Printf.printf "t=0  %2d shoppers, utility %7.2f (initial AVG)\n"
    (Svgic.Instance.n (Dynamic.instance session))
    (Dynamic.total_utility session);

  (* Two friends of shoppers 0 and 3 walk in. *)
  let m = Svgic.Instance.m inst in
  let newcomer friends seed =
    let prng = Rng.create seed in
    Dynamic.
      {
        pref = Array.init m (fun _ -> Rng.float prng 1.0);
        tau_out = (fun _ _ -> 0.15);
        tau_in = (fun _ _ -> 0.15);
        friends;
      }
  in
  let session, id1 = Dynamic.join session (newcomer [| 0; 3 |] 1) in
  Printf.printf "t=1  %2d shoppers, utility %7.2f (shopper %d joined)\n"
    (Svgic.Instance.n (Dynamic.instance session))
    (Dynamic.total_utility session) id1;

  let session, id2 = Dynamic.join session (newcomer [| id1; 5 |] 2) in
  Printf.printf "t=2  %2d shoppers, utility %7.2f (shopper %d joined)\n"
    (Svgic.Instance.n (Dynamic.instance session))
    (Dynamic.total_utility session) id2;

  (* Shopper 5 checks out. *)
  let session = Dynamic.leave session 5 in
  Printf.printf "t=3  %2d shoppers, utility %7.2f (shopper 5 left)\n"
    (Svgic.Instance.n (Dynamic.instance session))
    (Dynamic.total_utility session);

  (* Periodic full re-optimization catches up with the drift. *)
  let resolved = Dynamic.resolve rng session in
  Printf.printf "t=4  %2d shoppers, utility %7.2f (full AVG re-optimization)\n"
    (Svgic.Instance.n (Dynamic.instance resolved))
    (Dynamic.total_utility resolved)
