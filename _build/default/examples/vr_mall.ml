(* A full VR-mall shopping session on a synthetic Timik-like social
   network, exercising the large-scale pipeline and the Section 5
   extensions: slot significance, multi-view display and
   subgroup-change smoothing.

   Run with: dune exec examples/vr_mall.exe *)

module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets
module Metrics = Svgic.Metrics

let () =
  let rng = Rng.create 2026 in
  let inst =
    Datasets.make Datasets.Timik rng ~n:60 ~m:120 ~k:8 ~lambda:0.5
  in
  Printf.printf "VR mall: %d shoppers, %d items, %d display slots, %d friend pairs\n\n"
    (Svgic.Instance.n inst) (Svgic.Instance.m inst) (Svgic.Instance.k inst)
    (Array.length (Svgic.Instance.pairs inst));

  let relax = Svgic.Relaxation.solve inst in
  let config = Svgic.Algorithms.avg_best_of ~repeats:9 rng inst relax in
  let personalized = Svgic.Baselines.personalized inst in

  let report name cfg =
    let pref, social = Metrics.utility_split inst cfg in
    Printf.printf
      "%-14s total %8.2f (preference %7.2f, social %7.2f)  codisplay %4.0f%%  alone %4.0f%%\n"
      name (pref +. social) pref social
      (100.0 *. Metrics.codisplay_rate inst cfg)
      (100.0 *. Metrics.alone_rate inst cfg)
  in
  report "AVG" config;
  report "personalized" personalized;
  print_newline ();

  (* Slot significance: the aisle center (middle slots) is worth more
     (Dreze et al.); reorder the configuration's slot contents. *)
  let k = Svgic.Instance.k inst in
  let gamma =
    Array.init k (fun s ->
        let center = float_of_int (k - 1) /. 2.0 in
        2.0 -. (Float.abs (float_of_int s -. center) /. center))
  in
  let placed = Svgic.Extensions.optimize_slot_order inst ~gamma config in
  Printf.printf "slot significance: weighted utility %8.2f -> %8.2f after placement\n"
    (Svgic.Extensions.weighted_total_utility inst ~gamma config)
    (Svgic.Extensions.weighted_total_utility inst ~gamma placed);

  (* Smooth subgroup changes between consecutive shelves. *)
  let smoothed = Svgic.Extensions.smooth_subgroup_changes inst config in
  Printf.printf "subgroup fluctuation: %d pair-breaks -> %d after smoothing\n"
    (Svgic.Extensions.edit_distance inst config)
    (Svgic.Extensions.edit_distance inst smoothed);

  (* Multi-view display: let each shopper keep her personal pick and
     open up to two extra group views per shelf. *)
  let mvd = Svgic.Mvd.greedy_enrich inst ~beta:3 config in
  Printf.printf "multi-view display (beta = 3): utility %8.2f -> %8.2f\n"
    (Svgic.Config.total_utility inst config)
    (Svgic.Mvd.total_utility inst mvd);

  (* Commodity values: maximize profit instead of raw satisfaction. *)
  let omega =
    Array.init (Svgic.Instance.m inst) (fun c ->
        1.0 +. (float_of_int (c mod 7) /. 2.0))
  in
  let shop = Svgic.Extensions.with_commodity_values inst omega in
  let relax_profit = Svgic.Relaxation.solve shop in
  let profit_config = Svgic.Algorithms.avg rng shop relax_profit in
  Printf.printf "commodity-weighted expected profit: %8.2f (vs %8.2f for the\n"
    (Svgic.Config.total_utility shop profit_config)
    (Svgic.Config.total_utility shop config);
  print_endline "  satisfaction-optimal configuration re-priced)"
