(* Social Event Organization (SEO) as an application of SVGIC-ST
   (Section 4.4): schedule a weekend of meetup sessions so that
   attendees see events they like together with friends, respecting
   venue capacities.

   Run with: dune exec examples/event_organizer.exe *)

module Rng = Svgic_util.Rng
module Seo = Svgic.Seo

let event_names =
  [|
    "board games"; "hiking"; "wine tasting"; "museum tour"; "escape room";
    "karaoke"; "cooking class"; "five-a-side"; "book club"; "photo walk";
  |]

let () =
  let rng = Rng.create 99 in
  let attendees = 18 in
  let rounds = 2 in
  let capacity = 6 in
  (* Friendships: a small-world community. *)
  let graph = Svgic_graph.Generate.watts_strogatz rng ~n:attendees ~neighbors:2 ~beta:0.2 in
  let events = Array.map (fun name -> Seo.{ name }) event_names in
  (* Interests from the latent-topic model; companionship utility from
     shared interest. *)
  let model =
    Svgic_data.Utility_model.generate Svgic_data.Utility_model.Piert rng graph
      ~m:(Array.length events)
  in
  let pref = Svgic_data.Utility_model.pref model in
  let tau = Svgic_data.Utility_model.tau model in
  let plan =
    Seo.organize rng ~graph ~events ~rounds ~capacity ~pref ~tau ~lambda:0.6
  in
  Printf.printf "scheduled %d attendees into %d rounds (capacity %d/event)\n"
    attendees rounds capacity;
  Printf.printf "total welfare %.2f; largest session %d people\n\n"
    (Seo.total_welfare plan) (Seo.max_event_load plan);
  for round = 0 to rounds - 1 do
    Printf.printf "round %d:\n" (round + 1);
    Array.iteri
      (fun e (event : Seo.event) ->
        let who = Seo.attendees plan ~round ~event:e in
        if Array.length who > 0 then
          Printf.printf "  %-14s %s\n" event.name
            (String.concat ", "
               (List.map (fun u -> Printf.sprintf "p%02d" u) (Array.to_list who))))
      plan.events;
    print_newline ()
  done;
  Printf.printf "sample schedule for p00: %s\n"
    (String.concat " then "
       (Array.to_list
          (Array.map (fun (e : Seo.event) -> e.name) (Seo.schedule_of plan ~user:0))))
