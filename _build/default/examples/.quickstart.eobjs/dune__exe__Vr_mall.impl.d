examples/vr_mall.ml: Array Float Printf Svgic Svgic_data Svgic_util
