examples/vr_mall.mli:
