examples/camera_store.mli:
