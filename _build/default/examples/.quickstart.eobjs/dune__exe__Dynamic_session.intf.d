examples/dynamic_session.mli:
