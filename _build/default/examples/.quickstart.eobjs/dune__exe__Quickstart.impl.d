examples/quickstart.ml: Array Float List Printf String Svgic Svgic_graph Svgic_util
