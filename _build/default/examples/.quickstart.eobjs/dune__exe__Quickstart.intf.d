examples/quickstart.mli:
