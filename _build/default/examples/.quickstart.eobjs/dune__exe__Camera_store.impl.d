examples/camera_store.ml: Array List Printf String Svgic Svgic_util
