examples/dynamic_session.ml: Array Printf Svgic Svgic_data Svgic_util
