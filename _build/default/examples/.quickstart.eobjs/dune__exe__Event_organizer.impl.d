examples/event_organizer.ml: Array List Printf String Svgic Svgic_data Svgic_graph Svgic_util
