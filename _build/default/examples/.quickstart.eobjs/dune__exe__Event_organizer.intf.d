examples/event_organizer.mli:
