(* Quickstart: build an SVGIC instance by hand, solve it with AVG, and
   inspect the resulting SAVG k-configuration.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A shopping group of four friends: 0-1, 1-2, 2-3 and 0-2 are
     friends (reciprocal edges). *)
  let graph =
    Svgic_graph.Graph.of_edges ~n:4
      (List.concat_map
         (fun (u, v) -> [ (u, v); (v, u) ])
         [ (0, 1); (1, 2); (2, 3); (0, 2) ])
  in
  (* Six items; user u's preference decays away from her favourite
     item (items 0, 1, 2, 3 respectively). *)
  let pref =
    Array.init 4 (fun u ->
        Array.init 6 (fun c -> 1.0 /. (1.0 +. float_of_int (abs (c - u)))))
  in
  (* Friends enjoy discussing an item both of them like. *)
  let tau u v c = 0.4 *. Float.min pref.(u).(c) pref.(v).(c) in
  let inst =
    Svgic.Instance.create ~graph ~m:6 ~k:2 ~lambda:0.5 ~pref ~tau
  in

  (* AVG = LP relaxation ("config phase") + CSF rounding. *)
  let relax = Svgic.Relaxation.solve inst in
  let rng = Svgic_util.Rng.create 42 in
  let config = Svgic.Algorithms.avg rng inst relax in

  Printf.printf "total SAVG utility: %.3f (LP upper bound %.3f)\n\n"
    (Svgic.Config.total_utility inst config)
    (Svgic.Relaxation.upper_bound inst relax);
  for u = 0 to 3 do
    let row = Svgic.Config.row config u in
    Printf.printf "user %d sees items: %s\n" u
      (String.concat ", " (List.map string_of_int (Array.to_list row)))
  done;
  print_newline ();

  (* Who discusses what where? *)
  for s = 0 to 1 do
    Printf.printf "slot %d subgroups:\n" (s + 1);
    Array.iter
      (fun members ->
        Printf.printf "  item %d -> users {%s}\n"
          (Svgic.Config.item config ~user:members.(0) ~slot:s)
          (String.concat ", "
             (List.map string_of_int (Array.to_list members))))
      (Svgic.Config.subgroups_at_slot config inst s)
  done
