(* The paper's digital-photography store (Example 1): Alice, Bob,
   Charlie and Dave choose among a tripod, a DSLR camera, a portable
   storage device, a memory card and a self-portrait camera, with three
   display slots.

   Run with: dune exec examples/camera_store.exe *)

module Example = Svgic.Example_paper

let item_names = [| "tripod"; "DSLR camera"; "PSD"; "memory card"; "SP camera" |]
let user_names = [| "Alice"; "Bob"; "Charlie"; "Dave" |]

let describe inst title config =
  Printf.printf "%s — total utility %.2f (paper scale)\n" title
    (Example.paper_scale *. Svgic.Config.total_utility inst config);
  Array.iteri
    (fun u name ->
      Printf.printf "  %-8s:" name;
      Array.iter
        (fun c -> Printf.printf " [%s]" item_names.(c))
        (Svgic.Config.row config u);
      print_newline ())
    user_names;
  (* Describe the co-display structure slot by slot. *)
  for s = 0 to 2 do
    Array.iter
      (fun members ->
        if Array.length members > 1 then
          Printf.printf "  slot %d: %s can discuss the %s together\n" (s + 1)
            (String.concat ", "
               (List.map (fun u -> user_names.(u)) (Array.to_list members)))
            item_names.(Svgic.Config.item config ~user:members.(0) ~slot:s))
      (Svgic.Config.subgroups_at_slot config inst s)
  done;
  print_newline ()

let () =
  let inst = Example.instance () in
  describe inst "The paper's optimal SAVG 3-configuration"
    (Example.optimal_config inst);

  describe inst "Personalized top-k (no social interaction)"
    (Svgic.Baselines.personalized inst);

  describe inst "Group bundle (everyone sees the same items)"
    (Svgic.Baselines.group ~fairness:0.0 inst);

  (* Run the paper's algorithms. *)
  let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
  let rng = Svgic_util.Rng.create 7 in
  describe inst "AVG (best of 20 CSF roundings)"
    (Svgic.Algorithms.avg_best_of ~repeats:20 rng inst relax);
  describe inst "AVG-D (deterministic)" (Svgic.Algorithms.avg_d inst relax);

  (* And the exact optimum for reference. *)
  match Svgic.Baselines.exact_ip inst with
  | Some config, result ->
      Printf.printf "(IP proved the optimum in %d branch-and-bound nodes)\n\n"
        result.nodes;
      describe inst "Exact optimum (branch and bound)" config
  | None, _ -> print_endline "IP found no solution (unexpected)"
