(* Figure 16: the user study, run on the synthetic 44-participant
   cohort (DESIGN.md section 2 documents the substitution). *)

module C = Bench_common
module Rng = Svgic_util.Rng
module User_study = Svgic_data.User_study
module Stats = Svgic_util.Stats

let run () =
  C.heading "fig16" "User study (44 synthetic participants, hTC VIVE surrogate)";
  C.paper_note
    [
      "lambda in [0.15, 0.85], mean 0.53; AVG beats baselines by";
      ">= 34.2% utility and >= 29.6% satisfaction; utility vs";
      "satisfaction correlates strongly (Spearman 0.835, Pearson";
      "0.814); GRF's normalized density is low (~0.21), AVG's > 1 with";
      "alone rate 0.";
    ];
  let rng = Rng.create 1600 in
  let cohort = User_study.make_cohort rng in
  (* 16(a): λ histogram. *)
  let lambdas = User_study.all_lambdas cohort in
  Printf.printf "Figure 16(a): lambda distribution (mean %.3f, min %.2f, max %.2f)\n"
    (Stats.mean lambdas)
    (Array.fold_left Float.min 1.0 lambdas)
    (Array.fold_left Float.max 0.0 lambdas);
  let bins = Stats.histogram lambdas ~lo:0.1 ~hi:0.9 ~bins:8 in
  Array.iteri
    (fun i count ->
      Printf.printf "  [%.2f-%.2f): %s\n"
        (0.1 +. (0.1 *. float_of_int i))
        (0.2 +. (0.1 *. float_of_int i))
        (String.make count '#'))
    bins;
  print_newline ();
  let methods =
    [
      ( "AVG",
        fun inst ->
          let relax = Svgic.Relaxation.solve inst in
          Svgic.Algorithms.avg_best_of ~repeats:C.avg_repeats (Rng.create 1601)
            inst relax );
      ("PER", Svgic.Baselines.personalized);
      ("FMG", fun inst -> Svgic.Baselines.group inst);
      ("GRF", fun inst -> Svgic.Baselines.subgroup_by_preference (Rng.create 1602) inst);
    ]
  in
  let outcomes = User_study.run rng cohort methods in
  Printf.printf "Figure 16(b): utility and satisfaction\n";
  C.print_header "method" [ "utility"; "satisf."; "spearman"; "pearson" ];
  List.iter
    (fun (o : User_study.method_outcome) ->
      let spearman, pearson = User_study.correlation o in
      C.print_row o.method_name
        [ o.mean_utility; o.mean_satisfaction; spearman; pearson ])
    outcomes;
  let spearman_all, pearson_all = User_study.pooled_correlation outcomes in
  Printf.printf
    "pooled utility-satisfaction correlation: Spearman %.3f, Pearson %.3f\n"
    spearman_all pearson_all;
  (match outcomes with
  | avg :: rest ->
      let n_obs = 4 * Array.length avg.utilities in
      let p = Stats.t_test_correlation ~r:pearson_all ~n:n_obs in
      Printf.printf "(pooled correlation p-value ~ %.4f)\n" p;
      let best_u = List.fold_left (fun a (o : User_study.method_outcome) -> Float.max a o.mean_utility) 0.0 rest in
      let best_s = List.fold_left (fun a (o : User_study.method_outcome) -> Float.max a o.mean_satisfaction) 0.0 rest in
      Printf.printf "AVG vs best baseline: +%.1f%% utility, +%.1f%% satisfaction\n"
        (100.0 *. ((avg.mean_utility /. best_u) -. 1.0))
        (100.0 *. ((avg.mean_satisfaction /. best_s) -. 1.0))
  | [] -> ());
  print_newline ();
  Printf.printf "Figure 16(c): subgroup structure\n";
  C.print_header "method" [ "intra%"; "density" ];
  List.iter
    (fun (o : User_study.method_outcome) ->
      C.print_row o.method_name [ o.intra_pct; o.normalized_density ])
    outcomes;
  print_newline ();
  Printf.printf "Figure 16(d): co-display and alone rates\n";
  C.print_header "method" [ "codisplay%"; "alone%" ];
  List.iter
    (fun (o : User_study.method_outcome) ->
      C.print_row o.method_name [ o.codisplay_rate; o.alone_rate ])
    outcomes
