(* Figure 10: subgroup metrics per dataset (inter/intra%, normalized
   density, co-display%, alone%, regret CDF). Figure 11: the 2-hop
   ego-network case study. *)

module C = Bench_common
module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets
module Instance = Svgic.Instance
module Config = Svgic.Config
module Metrics = Svgic.Metrics
module Graph = Svgic_graph.Graph

let methods = [ C.avg_solver; C.avg_d_solver; C.per_solver; C.fmg_solver; C.sdp_solver; C.grf_solver ]

let n = 60
let m = 120
let k = 8

let per_dataset f =
  List.iter
    (fun preset ->
      Printf.printf "%s:\n" (Datasets.name preset);
      let rng = Rng.create 1000 in
      let inst = Datasets.make preset rng ~n ~m ~k ~lambda:0.5 in
      f inst;
      print_newline ())
    [ Datasets.Timik; Datasets.Epinions; Datasets.Yelp ]

let run_methods inst f =
  List.iter
    (fun (solver : C.solver) ->
      let cfg = solver.run (Rng.create 1001) inst in
      f solver.name cfg)
    methods

let edges_density () =
  C.heading "fig10a-c" "Inter%/Intra% and normalized subgroup density";
  C.paper_note
    [
      "AVG keeps most preserved edges intra-subgroup and has the";
      "largest normalized density (> 1); FMG trivially scores";
      "intra = 100% / density = 1; PER is inter-dominated (100% inter";
      "on Yelp, some intra on Timik/Epinions via popular items).";
    ];
  per_dataset (fun inst ->
      C.print_header "method" [ "intra%"; "inter%"; "density" ];
      run_methods inst (fun name cfg ->
          let intra, inter = Metrics.intra_inter_pct inst cfg in
          C.print_row name [ intra; inter; Metrics.normalized_density inst cfg ]))

let codisplay_alone () =
  C.heading "fig10d-f" "Co-display% and Alone%";
  C.paper_note
    [
      "AVG: co-display ~1.0 and alone ~0; FMG: 1.0 / 0 by forming one";
      "huge subgroup; GRF leaves many users alone (unique profiles);";
      "PER facilitates no shared views.";
    ];
  per_dataset (fun inst ->
      C.print_header "method" [ "codisplay%"; "alone%" ];
      run_methods inst (fun name cfg ->
          C.print_row name
            [ Metrics.codisplay_rate inst cfg; Metrics.alone_rate inst cfg ]))

let regret_cdf () =
  C.heading "fig10g-i" "Regret-ratio CDF";
  C.paper_note
    [
      "AVG/AVG-D have the lowest regret (seldom above 20%); PER the";
      "highest; GRF serves some users well and some terribly (late";
      "CDF jump); FMG/SDP are flat but consistently above 20%.";
    ];
  let points = [| 0.1; 0.2; 0.3; 0.5; 0.7; 0.9 |] in
  per_dataset (fun inst ->
      C.print_header "method"
        (Array.to_list (Array.map (Printf.sprintf "<=%.1f") points));
      run_methods inst (fun name cfg ->
          C.print_row name (Array.to_list (Metrics.regret_cdf inst cfg ~points))))

(* ----------------------- Figure 11 case study --------------------- *)

(* The focal user: the one whose preference vector is least similar to
   any of her friends' (the "unique profile" user A of the paper). *)
let most_unique_user inst =
  let n = Instance.n inst and m = Instance.m inst in
  let g = Instance.graph inst in
  let cosine u v =
    let dot = ref 0.0 and nu = ref 0.0 and nv = ref 0.0 in
    for c = 0 to m - 1 do
      let a = Instance.pref inst u c and b = Instance.pref inst v c in
      dot := !dot +. (a *. b);
      nu := !nu +. (a *. a);
      nv := !nv +. (b *. b)
    done;
    if !nu = 0.0 || !nv = 0.0 then 0.0 else !dot /. sqrt (!nu *. !nv)
  in
  let best = ref (-1) and best_score = ref infinity in
  for u = 0 to n - 1 do
    let friends = Graph.neighbors_undirected g u in
    if Array.length friends >= 3 then begin
      let closest =
        Array.fold_left (fun acc v -> Float.max acc (cosine u v)) 0.0 friends
      in
      if closest < !best_score then begin
        best := u;
        best_score := closest
      end
    end
  done;
  if !best < 0 then 0 else !best

let case_study () =
  C.heading "fig11" "Case study: 2-hop ego network of a unique-profile user";
  C.paper_note
    [
      "AVG joins the focal user to different friend subgroups at";
      "different slots; SDP forces one clique's taste on her; GRF";
      "leaves her alone. Regret in the paper: AVG 19.6%, SDP 35.2%,";
      "GRF 41.2%.";
    ];
  let rng = Rng.create 1100 in
  let base = Datasets.make Datasets.Yelp rng ~n:40 ~m:60 ~k:6 ~lambda:0.5 in
  let focal0 = most_unique_user base in
  let ego = Graph.ego (Instance.graph base) ~center:focal0 ~hops:2 in
  let inst, mapping = Instance.restrict_users base ego in
  let focal =
    let found = ref 0 in
    Array.iteri (fun i old -> if old = focal0 then found := i) mapping;
    !found
  in
  Printf.printf "ego network: %d users, %d friend pairs; focal user #%d\n\n"
    (Instance.n inst)
    (Array.length (Instance.pairs inst))
    focal;
  let show name cfg =
    let regret = (Metrics.regret_ratios inst cfg).(focal) in
    Printf.printf "%s: focal regret %.1f%%\n" name (100.0 *. regret);
    for s = 0 to 1 do
      let groups = Config.subgroups_at_slot cfg inst s in
      let mine =
        Array.to_list groups
        |> List.find (fun members -> Array.exists (( = ) focal) members)
      in
      Printf.printf "  slot %d: item %d with subgroup {%s}\n" (s + 1)
        (Config.item cfg ~user:focal ~slot:s)
        (String.concat ", " (List.map string_of_int (Array.to_list mine)))
    done;
    print_newline ()
  in
  List.iter
    (fun (solver : C.solver) -> show solver.name (solver.run (Rng.create 1101) inst))
    [ C.avg_solver; C.sdp_solver; C.grf_solver ]

let run_all () =
  edges_density ();
  codisplay_alone ();
  regret_cdf ();
  case_study ()
