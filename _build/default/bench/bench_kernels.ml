(* Bechamel micro-benchmarks of the algorithmic kernels: LP build,
   simplex solve, one Frank-Wolfe sweep, CSF rounding, AVG-D, and
   objective evaluation. Not a paper figure — these watch for
   performance regressions in the hot paths behind Figures 3/8/9. *)

open Bechamel
open Toolkit

module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets

let make_instance () =
  let rng = Rng.create 1700 in
  Datasets.make Datasets.Timik rng ~n:20 ~m:24 ~k:4 ~lambda:0.5

let tests () =
  let inst = make_instance () in
  let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
  let fw_problem = Svgic.Lp_build.fw_problem inst in
  let cfg = Svgic.Baselines.personalized inst in
  [
    Test.make ~name:"lp_build.simp"
      (Staged.stage (fun () -> ignore (Svgic.Lp_build.simp_lp inst)));
    Test.make ~name:"simplex.solve_simp"
      (Staged.stage (fun () ->
           ignore
             (Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst)));
    Test.make ~name:"fw.40_iterations"
      (Staged.stage (fun () ->
           ignore (Svgic_lp.Pairwise_fw.solve ~iterations:40 fw_problem)));
    Test.make ~name:"csf.avg_rounding"
      (Staged.stage (fun () ->
           let rng = Rng.create 1701 in
           ignore (Svgic.Algorithms.avg rng inst relax)));
    Test.make ~name:"avg_d.full"
      (Staged.stage (fun () -> ignore (Svgic.Algorithms.avg_d inst relax)));
    Test.make ~name:"objective.total_utility"
      (Staged.stage (fun () -> ignore (Svgic.Config.total_utility inst cfg)));
    Test.make ~name:"metrics.regret_ratios"
      (Staged.stage (fun () -> ignore (Svgic.Metrics.regret_ratios inst cfg)));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let raw_results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"kernels" (tests ()))
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  (Analyze.merge ols instances results, raw_results)

let run () =
  Bench_common.heading "kernels" "Bechamel kernel micro-benchmarks";
  let results, _ = benchmark () in
  Hashtbl.iter
    (fun _measure table ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        table)
    results
