(* Figure 9(a): time-budgeted exact MIP variants vs AVG-D.
   Figure 9(b): the speedup-strategy ablation (advanced LP
   transformation, advanced focal-parameter sampling).
   Figure 12: sensitivity of AVG-D to the balancing ratio r. *)

module C = Bench_common
module BB = Svgic_lp.Branch_bound
module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets
module Timer = Svgic_util.Timer
module Config = Svgic.Config
module Metrics = Svgic.Metrics

(* ------------------------------ 9(a) ------------------------------ *)

(* Our stand-ins for the commercial MIP algorithm variants: the same
   exact branch-and-bound explored in different orders. *)
let mip_variants =
  [
    ("IP-Primal", BB.Depth_first, BB.Most_fractional);
    ("IP-Dual", BB.Depth_first, BB.Max_objective);
    ("IP-C", BB.Hybrid, BB.Most_fractional);
    ("IP-DC", BB.Hybrid, BB.Max_objective);
    ("IP-Barrier", BB.Best_first, BB.Most_fractional);
  ]

let mip_variants_bench () =
  C.heading "fig9a"
    "Budgeted exact MIP variants, objective normalized by AVG-D";
  C.paper_note
    [
      "no MIP variant beats AVG-D even at 5000x its running time; the";
      "variants differ only marginally from each other.";
    ];
  (* The largest size our dense-simplex B&B still handles; the high λ
     makes the relaxation fractional so the tree search has real work.
     NOTE (EXPERIMENTS.md): at laptop scale the exact solver is far
     stronger relative to AVG-D than Gurobi was at the paper's scale
     (their default instance has ~60M binaries), so budgeted IP
     eventually catches AVG-D here; the small-budget behaviour (no or
     poor incumbents) is the part of the paper's shape that survives
     the downscaling. *)
  let make rng = Datasets.make Datasets.Timik rng ~n:12 ~m:10 ~k:3 ~lambda:0.75 in
  let rng = Rng.create 900 in
  let inst = make rng in
  let avg_d_cfg, avg_d_time =
    Timer.time (fun () ->
        let relax = Svgic.Relaxation.solve inst in
        Svgic.Algorithms.avg_d inst relax)
  in
  let avg_d_value = Config.total_utility inst avg_d_cfg in
  Printf.printf "AVG-D: utility %.3f in %.3fs\n\n" avg_d_value avg_d_time;
  let budgets = [ 125.0; 625.0; 2500.0 ] in
  C.print_header "variant"
    (List.map (fun b -> Printf.sprintf "%.0fxT" b) budgets);
  let problem, binaries, maps = Svgic.Lp_build.ip inst in
  List.iter
    (fun (name, strategy, branch_rule) ->
      let cells =
        List.map
          (fun budget ->
            let options =
              {
                BB.default_options with
                strategy;
                branch_rule;
                time_budget_s =
                  Some (Float.min 30.0 (Float.max 0.05 (budget *. avg_d_time)));
              }
            in
            let result = BB.solve ~options problem ~binary:binaries in
            match result.incumbent with
            | None -> 0.0
            | Some x ->
                let n = Svgic.Instance.n inst
                and m = Svgic.Instance.m inst
                and k = Svgic.Instance.k inst in
                let assign = Array.make_matrix n k (-1) in
                for u = 0 to n - 1 do
                  for s = 0 to k - 1 do
                    for c = 0 to m - 1 do
                      if x.(maps.x_var u c s) > 0.5 then assign.(u).(s) <- c
                    done
                  done
                done;
                Config.total_utility inst (Config.make inst assign)
                /. avg_d_value)
          budgets
      in
      C.print_row name cells)
    mip_variants

(* ------------------------------ 9(b) ------------------------------ *)

let speedups_bench () =
  C.heading "fig9b" "Speedup-strategy ablation (execution time, seconds)";
  C.paper_note
    [
      "both strategies help; the advanced LP transformation dominates";
      "for AVG (the LP is its bottleneck), while the advanced sampling";
      "matters more on the focal-parameter side.";
    ];
  (* Sizes small enough that the untransformed slot-indexed LP remains
     solvable by the dense simplex. *)
  let make rng = Datasets.make Datasets.Timik rng ~n:8 ~m:8 ~k:3 ~lambda:0.5 in
  let variants : C.solver list =
    [
      C.avg_solver;
      {
        name = "AVG-ALP";
        run =
          (fun rng inst ->
            let relax = Svgic.Relaxation.solve_without_transform inst in
            Svgic.Algorithms.avg_best_of ~repeats:C.avg_repeats rng inst relax);
      };
      {
        name = "AVG-AS";
        run =
          (fun rng inst ->
            let relax = Svgic.Relaxation.solve inst in
            Svgic.Algorithms.avg_best_of ~advanced_sampling:false
              ~repeats:C.avg_repeats rng inst relax);
      };
      C.avg_d_solver;
      {
        name = "AVG-D-ALP";
        run =
          (fun _ inst ->
            let relax = Svgic.Relaxation.solve_without_transform inst in
            Svgic.Algorithms.avg_d inst relax);
      };
    ]
  in
  C.print_header "variant" [ "seconds"; "utility" ];
  List.iter
    (fun solver ->
      let r = C.measure ~samples:3 ~seed:901 make solver in
      C.print_row solver.name [ r.C.seconds; r.C.value ])
    variants;
  print_endline
    "(AVG-D evaluates focal candidates incrementally by construction,\n\
    \ so it has no separate -AS variant in this implementation.)"

(* ------------------------------ 12 -------------------------------- *)

let r_sensitivity () =
  C.heading "fig12" "AVG-D sensitivity to the balancing ratio r";
  C.paper_note
    [
      "r in [0.7, 1.0] is near-optimal; r = 0.25 still reaches ~86% of";
      "optimum (the guarantee); small r mimics the group approach";
      "(density ~1, intra ~1), large r mimics the personalized one";
      "(social -> 0, more iterations so more time).";
    ];
  let make rng = Datasets.make Datasets.Timik rng ~n:30 ~m:60 ~k:5 ~lambda:0.5 in
  let rng = Rng.create 902 in
  let inst = make rng in
  let relax = Svgic.Relaxation.solve inst in
  C.print_header "r" [ "utility"; "seconds"; "density"; "intra%"; "social" ];
  List.iter
    (fun r ->
      let cfg, dt = Timer.time (fun () -> Svgic.Algorithms.avg_d ~r inst relax) in
      let intra, _ = Metrics.intra_inter_pct inst cfg in
      let _, social = Metrics.utility_split inst cfg in
      C.print_row
        (Printf.sprintf "%.2f" r)
        [
          Config.total_utility inst cfg;
          dt;
          Metrics.normalized_density inst cfg;
          intra;
          social;
        ])
    [ 0.05; 0.1; 0.25; 0.5; 0.7; 1.0; 1.5; 2.0 ]

let run_all () =
  mip_variants_bench ();
  speedups_bench ();
  r_sensitivity ()
