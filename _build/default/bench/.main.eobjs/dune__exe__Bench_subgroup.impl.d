bench/bench_subgroup.ml: Array Bench_common Float List Printf String Svgic Svgic_data Svgic_graph Svgic_util
