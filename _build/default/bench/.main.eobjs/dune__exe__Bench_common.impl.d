bench/bench_common.ml: List Printf String Svgic Svgic_data Svgic_lp Svgic_util
