bench/bench_user_study.ml: Array Bench_common Float List Printf String Svgic Svgic_data Svgic_util
