bench/bench_ablation.ml: Array Bench_common Float List Printf Svgic Svgic_data Svgic_lp Svgic_util
