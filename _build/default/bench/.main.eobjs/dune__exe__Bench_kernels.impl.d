bench/bench_kernels.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance List Measure Printf Staged Svgic Svgic_data Svgic_lp Svgic_util Test Time Toolkit
