bench/bench_tables.ml: Array Bench_common Printf Svgic Svgic_util
