bench/main.ml: Array Bench_ablation Bench_kernels Bench_large Bench_small Bench_st Bench_subgroup Bench_tables Bench_user_study List Printf Svgic_data Sys
