bench/bench_large.ml: Bench_common List Printf Svgic Svgic_data Svgic_util
