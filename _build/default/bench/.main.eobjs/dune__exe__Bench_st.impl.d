bench/bench_st.ml: Bench_common List Printf Svgic Svgic_data Svgic_util
