bench/bench_small.ml: Bench_common List Printf Svgic Svgic_data Svgic_util
