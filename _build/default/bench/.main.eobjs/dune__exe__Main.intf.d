bench/main.mli:
