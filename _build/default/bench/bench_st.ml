(* Figures 13-15: SVGIC-ST experiments (teleportation discount 0.5,
   subgroup size constraint M, prepartitioned "-P" baselines). *)

module C = Bench_common
module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets
module Instance = Svgic.Instance
module Config = Svgic.Config
module St = Svgic.St
module Baselines = Svgic.Baselines

let dtel = 0.5
let m = 40
let k = 6

let avg_st_solver ~m_cap : C.solver =
  {
    name = "AVG";
    run =
      (fun rng inst ->
        let relax = Svgic.Relaxation.solve inst in
        St.avg rng inst relax ~m_cap);
  }

let base_solvers : C.solver list =
  [ C.per_solver; C.fmg_solver; C.sdp_solver; C.grf_solver ]

let prepartitioned ~m_cap (solver : C.solver) : C.solver =
  {
    name = solver.name ^ "-P";
    run =
      (fun rng inst ->
        Baselines.prepartition rng inst ~max_size:m_cap ~solver:(fun sub ->
            solver.run rng sub));
  }

(* Total size-cap violations (in users) over [instances] samples. *)
let violations_of preset ~n ~m_cap ~instances (solver : C.solver) =
  let total = ref 0 in
  for sample = 1 to instances do
    let rng = Rng.create (1200 + sample) in
    let inst = Datasets.make preset rng ~n ~m ~k ~lambda:0.5 in
    let cfg = solver.run (Rng.create (1300 + sample)) inst in
    let excess, _ = St.violations inst ~m_cap cfg in
    total := !total + excess
  done;
  !total

let violations () =
  C.heading "fig13a-b" "Total subgroup-size violations (users, 5 instances)";
  C.paper_note
    [
      "AVG never violates (CSF locks full subgroups); PER is feasible";
      "by construction; prepartitioning (-P) reduces the violations of";
      "the social baselines but rarely eliminates them (common items";
      "can still collide across parts).";
    ];
  List.iter
    (fun (preset, n) ->
      Printf.printf "%s (n = %d):\n" (Datasets.name preset) n;
      let caps = [ 3; 5; 8 ] in
      C.print_header "method" (List.map (fun c -> "M=" ^ string_of_int c) caps);
      let row (solver_of : m_cap:int -> C.solver) name =
        let cells =
          List.map
            (fun m_cap ->
              float_of_int
                (violations_of preset ~n ~m_cap ~instances:5 (solver_of ~m_cap)))
            caps
        in
        C.print_row name cells
      in
      row (fun ~m_cap -> avg_st_solver ~m_cap) "AVG";
      List.iter
        (fun solver ->
          row (fun ~m_cap -> ignore m_cap; solver) (solver.C.name ^ "-NP");
          row (fun ~m_cap -> prepartitioned ~m_cap solver) (solver.C.name ^ "-P"))
        base_solvers;
      print_newline ())
    [ (Datasets.Timik, 25); (Datasets.Epinions, 15) ]

(* Figures 14/15: total ST utility (infeasible solutions score 0). *)
let utility_vs_cap ~id preset =
  C.heading id
    (Printf.sprintf "SVGIC-ST utility vs subgroup cap M (%s, n = 15, dtel = %.1f)"
       (Datasets.name preset) dtel);
  C.paper_note
    [
      "AVG wins except at very small M in Epinions, where GRF's small";
      "preference-aligned groups fit under the cap naturally;";
      "infeasible solutions count as 0.";
    ];
  let caps = [ 3; 5; 15 ] in
  C.print_header "method" (List.map (fun c -> "M=" ^ string_of_int c) caps);
  let evaluate (solver_of : m_cap:int -> C.solver) name =
    let cells =
      List.map
        (fun m_cap ->
          let total = ref 0.0 in
          let samples = 3 in
          for sample = 1 to samples do
            let rng = Rng.create (1400 + sample) in
            let inst = Datasets.make preset rng ~n:15 ~m ~k ~lambda:0.5 in
            let solver = solver_of ~m_cap in
            let cfg = solver.C.run (Rng.create (1500 + sample)) inst in
            if St.feasible inst ~m_cap cfg then
              total := !total +. St.total_utility inst ~dtel cfg
          done;
          !total /. 3.0)
        caps
    in
    C.print_row name cells
  in
  evaluate (fun ~m_cap -> avg_st_solver ~m_cap) "AVG";
  List.iter
    (fun solver -> evaluate (fun ~m_cap -> prepartitioned ~m_cap solver) (solver.C.name ^ "-P"))
    base_solvers

let run_all () =
  violations ();
  utility_vs_cap ~id:"fig14" Datasets.Timik;
  utility_vs_cap ~id:"fig15" Datasets.Epinions
