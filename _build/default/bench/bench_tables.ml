(* [table1] — the paper's running example: Table 1 inputs, the optimal
   configuration (Figure 1 / Example 5), the LP utility factors
   (Table 6), AVG / AVG-D outputs (Tables 7–8) and the four baseline
   configurations with their objective values (Table 9). *)

module C = Bench_common
module Rng = Svgic_util.Rng
module Example = Svgic.Example_paper
module Config = Svgic.Config
module Instance = Svgic.Instance

let item_names = [| "c1:tripod"; "c2:DSLR"; "c3:PSD"; "c4:memcard"; "c5:SPcam" |]
let user_names = [| "Alice"; "Bob"; "Charlie"; "Dave" |]

let print_config inst label cfg =
  Printf.printf "%s (paper-scaled utility %.2f)\n" label
    (Example.paper_scale *. Config.total_utility inst cfg);
  Array.iteri
    (fun u name ->
      Printf.printf "  %-8s" name;
      Array.iter
        (fun c -> Printf.printf " %-11s" item_names.(c))
        (Config.row cfg u);
      print_newline ())
    user_names

let run () =
  C.heading "table1" "Running example (Tables 1 and 6-9, Examples 2-5)";
  C.paper_note
    [
      "optimal = 10.35; PER = 8.25; group = 8.35;";
      "subgroup-by-friendship = 8.4; subgroup-by-preference = 8.7;";
      "AVG = 9.75 and AVG-D = 9.85 (LP-optimum dependent).";
    ];
  let inst = Example.instance () in
  Printf.printf "Table 1 preference utilities p(u, c):\n";
  Printf.printf "  %-11s" "";
  Array.iter (fun u -> Printf.printf "%9s" u) user_names;
  print_newline ();
  for c = 0 to 4 do
    Printf.printf "  %-11s" item_names.(c);
    for u = 0 to 3 do
      Printf.printf "%9.2f" (Instance.pref inst u c)
    done;
    print_newline ()
  done;
  print_newline ();
  print_config inst "Optimal SAVG 3-configuration (Figure 1)"
    (Example.optimal_config inst);
  print_newline ();
  (* Table 6: LP utility factors at slot 1 (identical across slots). *)
  let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
  Printf.printf "Utility factors x*(u, c, s) from LP_SIMP (Table 6; any slot):\n";
  Printf.printf "  %-8s" "";
  Array.iter (fun c -> Printf.printf " %-11s" c) item_names;
  print_newline ();
  for u = 0 to 3 do
    Printf.printf "  %-8s" user_names.(u);
    for c = 0 to 4 do
      Printf.printf " %-11.2f" (Svgic.Relaxation.factor inst relax u c)
    done;
    print_newline ()
  done;
  Printf.printf "LP upper bound (paper-scaled): %.2f\n\n"
    (Example.paper_scale *. Svgic.Relaxation.upper_bound inst relax);
  let rng = Rng.create 2024 in
  print_config inst "AVG (best of 20 roundings, Table 7 analogue)"
    (Svgic.Algorithms.avg_best_of ~repeats:20 rng inst relax);
  print_newline ();
  print_config inst "AVG-D (Table 8 analogue)" (Svgic.Algorithms.avg_d inst relax);
  print_newline ();
  print_config inst "PER (Table 9)" (Svgic.Baselines.personalized inst);
  print_newline ();
  print_config inst "Group/FMG (Table 9)" (Svgic.Baselines.group ~fairness:0.0 inst);
  print_newline ();
  let labels_of parts =
    let labels = Array.make 4 0 in
    Array.iteri (fun g members -> Array.iter (fun u -> labels.(u) <- g) members) parts;
    labels
  in
  print_config inst "Subgroup-by-friendship (Table 9)"
    (Svgic.Baselines.subgroup_by_friendship
       ~communities:(labels_of Example.friendship_parts) rng inst);
  print_newline ();
  print_config inst "Subgroup-by-preference (Table 9)"
    (Svgic.Baselines.subgroup_by_friendship
       ~communities:(labels_of Example.preference_parts) rng inst);
  print_newline ();
  let ip_cfg, _ = Svgic.Baselines.exact_ip inst in
  match ip_cfg with
  | Some cfg -> print_config inst "IP (exact optimum)" cfg
  | None -> print_endline "IP: no incumbent"
