(* Shared infrastructure for the experiment harness: method registry,
   timing, and table printing.

   Absolute numbers do not match the paper (synthetic datasets, our
   own LP solver, laptop-scale sizes); each experiment prints the
   paper's qualitative expectation next to the measured series so the
   shape can be compared directly. *)

module Rng = Svgic_util.Rng
module Timer = Svgic_util.Timer
module Instance = Svgic.Instance
module Config = Svgic.Config
module Relaxation = Svgic.Relaxation
module Algorithms = Svgic.Algorithms
module Baselines = Svgic.Baselines
module Datasets = Svgic_data.Datasets

type method_result = { value : float; seconds : float }

(* A method takes (rng, instance) and returns a configuration; the
   relaxation cost is charged to AVG/AVG-D (it is part of those
   algorithms). *)
type solver = { name : string; run : Rng.t -> Instance.t -> Config.t }

(* AVG is run as the best of a few CSF roundings over one LP solve
   (Corollary 4.1); the LP dominates the cost, so this matches how the
   paper deploys the randomized variant. *)
let avg_repeats = 9

let avg_solver =
  {
    name = "AVG";
    run =
      (fun rng inst ->
        let relax = Relaxation.solve inst in
        Algorithms.avg_best_of ~repeats:avg_repeats rng inst relax);
  }

let avg_single_solver =
  {
    name = "AVG(x1)";
    run =
      (fun rng inst ->
        let relax = Relaxation.solve inst in
        Algorithms.avg rng inst relax);
  }

let avg_d_solver =
  {
    name = "AVG-D";
    run =
      (fun _rng inst ->
        let relax = Relaxation.solve inst in
        Algorithms.avg_d inst relax);
  }

let per_solver = { name = "PER"; run = (fun _ inst -> Baselines.personalized inst) }
let fmg_solver = { name = "FMG"; run = (fun _ inst -> Baselines.group inst) }

let sdp_solver =
  { name = "SDP"; run = (fun rng inst -> Baselines.subgroup_by_friendship rng inst) }

let grf_solver =
  { name = "GRF"; run = (fun rng inst -> Baselines.subgroup_by_preference rng inst) }

let heuristics = [ avg_solver; avg_d_solver; per_solver; fmg_solver; sdp_solver; grf_solver ]

let ip_solver ?(node_budget = 20_000) ?(time_budget_s = 30.0) () =
  {
    name = "IP";
    run =
      (fun _ inst ->
        let options =
          {
            Svgic_lp.Branch_bound.default_options with
            node_budget = Some node_budget;
            time_budget_s = Some time_budget_s;
          }
        in
        match Baselines.exact_ip ~options inst with
        | Some cfg, _ -> cfg
        | None, _ -> Baselines.personalized inst);
  }

(* Runs a solver on freshly sampled instances and averages value and
   wall-clock. *)
let measure ~samples ~seed make_instance solver =
  let values = ref 0.0 and seconds = ref 0.0 in
  for sample = 1 to samples do
    let rng = Rng.create ((seed * 1009) + sample) in
    let inst = make_instance rng in
    let solver_rng = Rng.create ((seed * 7919) + sample) in
    let cfg, dt = Timer.time (fun () -> solver.run solver_rng inst) in
    values := !values +. Config.total_utility inst cfg;
    seconds := !seconds +. dt
  done;
  {
    value = !values /. float_of_int samples;
    seconds = !seconds /. float_of_int samples;
  }

(* ------------------------- printing ------------------------------- *)

let heading id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n"

let paper_note lines =
  List.iter (fun l -> Printf.printf "paper: %s\n" l) lines;
  print_newline ()

let print_header label columns =
  Printf.printf "%-14s" label;
  List.iter (fun c -> Printf.printf "%12s" c) columns;
  print_newline ();
  Printf.printf "%s\n" (String.make (14 + (12 * List.length columns)) '-')

let print_row label cells =
  Printf.printf "%-14s" label;
  List.iter (fun v -> Printf.printf "%12.3f" v) cells;
  print_newline ()

let print_row_str label cells =
  Printf.printf "%-14s" label;
  List.iter (fun v -> Printf.printf "%12s" v) cells;
  print_newline ()
