(* Figures 5-8: large-configuration comparisons. The paper's defaults
   are n = 125, m = 10000, k = 50; we keep n at the paper's scale and
   shrink m and k so the whole suite runs on one machine — the
   relaxation goes through the Frank-Wolfe solver exactly as the
   paper's goes through Gurobi (DESIGN.md section 2). *)

module C = Bench_common
module Datasets = Svgic_data.Datasets
module Utility_model = Svgic_data.Utility_model

let samples = 2
let default_m = 150
let default_k = 10

let make preset ~n rng =
  Datasets.make preset rng ~n ~m:default_m ~k:default_k ~lambda:0.5

let methods = C.heuristics

let utility_vs_n () =
  C.heading "fig5" "Total SAVG utility vs n (large, Timik-like)";
  C.paper_note
    [
      "AVG and AVG-D outperform every baseline by >= 30.1%; the gap to";
      "GRF widens (43.6% -> 54.6%) as n grows.";
    ];
  C.print_header "n" (List.map (fun (s : C.solver) -> s.name) methods);
  List.iteri
    (fun i n ->
      let results =
        List.map
          (fun s -> C.measure ~samples ~seed:(100 + i) (make Datasets.Timik ~n) s)
          methods
      in
      C.print_row (string_of_int n) (List.map (fun r -> r.C.value) results))
    [ 25; 50; 75; 100; 125 ]

let utility_by_dataset () =
  C.heading "fig6" "Total SAVG utility per dataset (n = 75)";
  C.paper_note
    [
      "AVG/AVG-D prevail on every dataset. Epinions' sparse trust";
      "network carries little social utility, so PER is nearly as good";
      "as FMG/SDP there; Yelp's strong communities favor the social";
      "methods.";
    ];
  List.iter
    (fun preset ->
      Printf.printf "%s:\n" (Datasets.name preset);
      C.print_header "method" [ "personal"; "social"; "total" ];
      List.iter
        (fun (solver : C.solver) ->
          let pref_sum = ref 0.0 and soc_sum = ref 0.0 in
          for sample = 1 to samples do
            let rng = Svgic_util.Rng.create (3000 + sample) in
            let inst = make preset ~n:75 rng in
            let solver_rng = Svgic_util.Rng.create (4000 + sample) in
            let cfg = solver.run solver_rng inst in
            let p, s = Svgic.Metrics.utility_split inst cfg in
            pref_sum := !pref_sum +. p;
            soc_sum := !soc_sum +. s
          done;
          let p = !pref_sum /. float_of_int samples
          and s = !soc_sum /. float_of_int samples in
          C.print_row solver.name [ p; s; p +. s ])
        methods;
      print_newline ())
    [ Datasets.Timik; Datasets.Epinions; Datasets.Yelp ]

let utility_by_model () =
  C.heading "fig7" "Total SAVG utility per input learning model (Timik-like, n = 75)";
  C.paper_note
    [
      "AVG/AVG-D lead under all of PIERT, AGREE and GREE; the social";
      "utility they extract under PIERT/AGREE slightly exceeds GREE";
      "(item-dependent social utility lets them pick better items).";
    ];
  C.print_header "model" (List.map (fun (s : C.solver) -> s.name) methods);
  List.iter
    (fun model ->
      let make rng =
        Datasets.make ~model Datasets.Timik rng ~n:75 ~m:default_m ~k:default_k
          ~lambda:0.5
      in
      let results =
        List.map (fun s -> C.measure ~samples ~seed:55 make s) methods
      in
      C.print_row_str
        (Utility_model.kind_name model)
        (List.map (fun r -> Printf.sprintf "%.2f" r.C.value) results))
    [ Utility_model.Piert; Utility_model.Agree; Utility_model.Gree ]

let time_vs_n () =
  C.heading "fig8a" "Execution time (s) vs n (Yelp-like)";
  C.paper_note
    [
      "IP cannot terminate at this scale (omitted); AVG scales better";
      "than AVG-D in n; baselines are linear scans.";
    ];
  C.print_header "n" (List.map (fun (s : C.solver) -> s.name) methods);
  List.iteri
    (fun i n ->
      let results =
        List.map
          (fun s -> C.measure ~samples ~seed:(200 + i) (make Datasets.Yelp ~n) s)
          methods
      in
      C.print_row (string_of_int n) (List.map (fun r -> r.C.seconds) results))
    [ 25; 50; 75; 100 ]

let time_vs_m () =
  C.heading "fig8b" "Execution time (s) vs m (Yelp-like, n = 50)";
  C.paper_note
    [
      "AVG and AVG-D are more scalable in m than the baselines that";
      "scan all items per step (CSF works on the fractional support).";
    ];
  C.print_header "m" (List.map (fun (s : C.solver) -> s.name) methods);
  List.iteri
    (fun i m ->
      let make rng =
        Datasets.make Datasets.Yelp rng ~n:50 ~m ~k:default_k ~lambda:0.5
      in
      let results =
        List.map (fun s -> C.measure ~samples ~seed:(300 + i) make s) methods
      in
      C.print_row (string_of_int m) (List.map (fun r -> r.C.seconds) results))
    [ 100; 150; 200; 300 ]

let run_all () =
  utility_vs_n ();
  utility_by_dataset ();
  utility_by_model ();
  time_vs_n ();
  time_vs_m ()
