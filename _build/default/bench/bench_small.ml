(* Figure 3 (small-dataset comparisons vs IP) and Figure 4 (λ split).
   Small shopping groups are random-walk samples of the Timik-like
   network, as in Section 6.2. *)

module C = Bench_common
module Datasets = Svgic_data.Datasets

let samples = 3

let make ~n ~m ~k rng = Datasets.make Datasets.Timik rng ~n ~m ~k ~lambda:0.5

let methods () = C.heuristics @ [ C.ip_solver ~time_budget_s:20.0 () ]

(* The exact IP is only run where its root LP is tractable for the
   dense simplex — the same "IP cannot terminate beyond small sizes"
   cut-off the paper applies (Section 6.4). *)
let ip_tractable ~n ~m ~k = n * m * k <= 300

let sweep ~id ~title ~note ~axis ~points ~size_of ~make_instance ~metric =
  C.heading id title;
  C.paper_note note;
  let methods = methods () in
  C.print_header axis (List.map (fun (s : C.solver) -> s.name) methods);
  List.iteri
    (fun i point ->
      let n, m, k = size_of point in
      let cells =
        List.map
          (fun (solver : C.solver) ->
            if solver.name = "IP" && not (ip_tractable ~n ~m ~k) then "-"
            else
              let r = C.measure ~samples ~seed:(i + 1) (make_instance point) solver in
              Printf.sprintf "%.3f" (metric r))
          methods
      in
      C.print_row_str (string_of_int point) cells)
    points

let utility_vs_n () =
  sweep ~id:"fig3a" ~title:"Total SAVG utility vs size of user set n (small)"
    ~note:
      [
        "AVG/AVG-D close to IP (within ~4-6%), beating baselines by";
        "50.8-62.8% as n grows; PER grows slowest.";
      ]
    ~axis:"n" ~points:[ 4; 6; 8; 10; 12 ]
    ~size_of:(fun n -> (n, 8, 3))
    ~make_instance:(fun n rng -> make ~n ~m:8 ~k:3 rng)
    ~metric:(fun r -> r.C.value)

let time_vs_n () =
  sweep ~id:"fig3b" ~title:"Execution time (s) vs size of user set n (small)"
    ~note:
      [
        "AVG/AVG-D need at most 7.5%/17.4% of IP's time, slightly more";
        "than the one-factor baselines.";
      ]
    ~axis:"n" ~points:[ 4; 6; 8; 10; 12 ]
    ~size_of:(fun n -> (n, 8, 3))
    ~make_instance:(fun n rng -> make ~n ~m:8 ~k:3 rng)
    ~metric:(fun r -> r.C.seconds)

let utility_vs_m () =
  sweep ~id:"fig3c" ~title:"Total SAVG utility vs size of item set m (small)"
    ~note:[ "m barely moves the utility: top items are already inside." ]
    ~axis:"m" ~points:[ 6; 10; 14; 18 ]
    ~size_of:(fun m -> (8, m, 3))
    ~make_instance:(fun m rng -> make ~n:8 ~m ~k:3 rng)
    ~metric:(fun r -> r.C.value)

let time_vs_m () =
  sweep ~id:"fig3d" ~title:"Execution time (s) vs size of item set m (small)"
    ~note:[ "IP grows fastest in m; AVG/AVG-D stay near-flat." ]
    ~axis:"m" ~points:[ 6; 10; 14; 18 ]
    ~size_of:(fun m -> (8, m, 3))
    ~make_instance:(fun m rng -> make ~n:8 ~m ~k:3 rng)
    ~metric:(fun r -> r.C.seconds)

let utility_vs_k () =
  sweep ~id:"fig3e" ~title:"Total SAVG utility vs number of slots k (small)"
    ~note:
      [
        "AVG-D/AVG pull away as k grows (134.7%/102.1% over baselines";
        "at large k): static subgroups run out of common items.";
      ]
    ~axis:"k" ~points:[ 2; 3; 4; 5 ]
    ~size_of:(fun k -> (8, 10, k))
    ~make_instance:(fun k rng -> make ~n:8 ~m:10 ~k rng)
    ~metric:(fun r -> r.C.value)

let time_vs_k () =
  sweep ~id:"fig3f" ~title:"Execution time (s) vs number of slots k (small)"
    ~note:[ "IP's time explodes in k; approximation algorithms scale." ]
    ~axis:"k" ~points:[ 2; 3; 4; 5 ]
    ~size_of:(fun k -> (8, 10, k))
    ~make_instance:(fun k rng -> make ~n:8 ~m:10 ~k rng)
    ~metric:(fun r -> r.C.seconds)

(* Figure 4: normalized total SAVG utility (split into Personal% and
   Social%) under different λ, normalized by IP's total. *)
let utility_vs_lambda () =
  C.heading "fig4" "Utility split vs λ (normalized by IP)";
  C.paper_note
    [
      "FMG/SDP improve as λ grows but cannot address diverse";
      "preferences; PER has the highest preference and lowest social";
      "utility and a small total.";
    ];
  let methods = methods () in
  List.iter
    (fun lambda ->
      Printf.printf "λ = %.2f\n" lambda;
      C.print_header "method" [ "personal"; "social"; "total"; "norm" ];
      let make rng =
        Datasets.make Datasets.Timik rng ~n:8 ~m:8 ~k:3 ~lambda
      in
      (* IP total for normalization (first sample only). *)
      let rows =
        List.map
          (fun (solver : C.solver) ->
            let pref_sum = ref 0.0 and soc_sum = ref 0.0 in
            for sample = 1 to samples do
              let rng = Svgic_util.Rng.create (1009 + sample) in
              let inst = make rng in
              let solver_rng = Svgic_util.Rng.create (7919 + sample) in
              let cfg = solver.run solver_rng inst in
              let p, s = Svgic.Metrics.utility_split inst cfg in
              pref_sum := !pref_sum +. p;
              soc_sum := !soc_sum +. s
            done;
            ( solver.name,
              !pref_sum /. float_of_int samples,
              !soc_sum /. float_of_int samples ))
          methods
      in
      let ip_total =
        List.fold_left
          (fun acc (name, p, s) -> if name = "IP" then p +. s else acc)
          1.0 rows
      in
      List.iter
        (fun (name, p, s) ->
          C.print_row name [ p; s; p +. s; (p +. s) /. ip_total ])
        rows;
      print_newline ())
    [ 0.33; 0.5; 0.67 ]

let run_all () =
  utility_vs_n ();
  time_vs_n ();
  utility_vs_m ();
  time_vs_m ();
  utility_vs_k ();
  time_vs_k ();
  utility_vs_lambda ()
