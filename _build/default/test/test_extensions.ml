(* Tests for the Section 5 extensions: commodity values, slot
   significance, group-wise social utility, subgroup-change smoothing,
   multi-view display, the dynamic scenario, and SEO. *)

module Rng = Svgic_util.Rng
module Instance = Svgic.Instance
module Config = Svgic.Config
module Extensions = Svgic.Extensions
module Mvd = Svgic.Mvd
module Dynamic = Svgic.Dynamic
module Seo = Svgic.Seo
module Example = Svgic.Example_paper

(* ---------------------- commodity values -------------------------- *)

let test_commodity_uniform_scaling () =
  let inst = Example.instance () in
  let doubled = Extensions.with_commodity_values inst (Array.make 5 2.0) in
  let cfg_data = Config.assignment (Example.optimal_config inst) in
  Alcotest.(check (float 1e-9)) "uniform ω doubles utility"
    (2.0 *. Config.total_utility inst (Config.make inst cfg_data))
    (Config.total_utility doubled (Config.make doubled cfg_data))

let test_commodity_changes_choice () =
  (* Making one item immensely valuable must drag the optimizer to it. *)
  let inst = Example.instance () in
  let omega = [| 1.0; 1.0; 50.0; 1.0; 1.0 |] in
  (* ω boosts the PSD (c3). *)
  let weighted = Extensions.with_commodity_values inst omega in
  let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex weighted in
  let cfg = Svgic.Algorithms.avg_d weighted relax in
  let psd_shown = ref 0 in
  for u = 0 to 3 do
    if Config.sees cfg weighted ~user:u ~item:Example.psd then incr psd_shown
  done;
  Alcotest.(check int) "PSD shown to everyone" 4 !psd_shown

let test_commodity_validation () =
  let inst = Example.instance () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Extensions.with_commodity_values: wrong length") (fun () ->
      ignore (Extensions.with_commodity_values inst [| 1.0 |]))

(* --------------------- slot significance -------------------------- *)

let test_slot_significance_uniform () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  Alcotest.(check (float 1e-9)) "uniform γ = plain objective"
    (Config.total_utility inst cfg)
    (Extensions.weighted_total_utility inst ~gamma:[| 1.0; 1.0; 1.0 |] cfg)

let test_slot_order_optimization () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let gamma = [| 9.0; 1.0; 3.0 |] in
  let improved = Extensions.optimize_slot_order inst ~gamma cfg in
  let before = Extensions.weighted_total_utility inst ~gamma cfg in
  let after = Extensions.weighted_total_utility inst ~gamma improved in
  Alcotest.(check bool) "no worse" true (after >= before -. 1e-9);
  (* Optimality over permutations: by the rearrangement inequality the
     best pairing is sorted-by-sorted; verify against brute force. *)
  let utilities = Array.init 3 (fun s -> Config.slot_utility inst cfg s) in
  let perms = [ [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |] ] in
  let best =
    List.fold_left
      (fun acc perm ->
        let v = ref 0.0 in
        Array.iteri (fun s target -> v := !v +. (gamma.(target) *. utilities.(s))) perm;
        Float.max acc !v)
      neg_infinity perms
  in
  Alcotest.(check (float 1e-9)) "optimal permutation" best after;
  (* The permutation must not change the unweighted objective. *)
  Alcotest.(check (float 1e-9)) "plain objective preserved"
    (Config.total_utility inst cfg)
    (Config.total_utility inst improved)

(* ------------------- group-wise social utility -------------------- *)

let test_groupwise_gamma_one_is_pairwise () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let tau_group = Extensions.diminishing_tau_group inst ~gamma:1.0 in
  Alcotest.(check (float 1e-9)) "γ=1 degenerates to pairwise"
    (Config.total_utility inst cfg)
    (Extensions.groupwise_total_utility inst ~tau_group cfg)

let test_groupwise_diminishing_below_pairwise () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let tau_group = Extensions.diminishing_tau_group inst ~gamma:0.5 in
  let diminished = Extensions.groupwise_total_utility inst ~tau_group cfg in
  let pairwise = Config.total_utility inst cfg in
  (* Sums here are < 1 per (user, slot), so the square root *raises*
     each positive term; with sums > 1 it would shrink them. Either
     way the value must differ from pairwise and stay finite. *)
  Alcotest.(check bool) "differs from pairwise" true
    (Float.abs (diminished -. pairwise) > 1e-6);
  Alcotest.(check bool) "finite" true (Float.is_finite diminished)

(* --------------------- subgroup-change smoothing ------------------ *)

let test_edit_distance_group_zero () =
  let inst = Example.instance () in
  let cfg = Svgic.Baselines.group ~fairness:0.0 inst in
  Alcotest.(check int) "static subgroups never change" 0
    (Extensions.edit_distance inst cfg)

let test_smoothing_no_worse () =
  let rng = Rng.create 500 in
  for _ = 1 to 5 do
    let inst = Helpers.random_instance rng ~n:6 ~m:8 ~k:4 in
    let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
    let cfg = Svgic.Algorithms.avg rng inst relax in
    let smoothed = Extensions.smooth_subgroup_changes inst cfg in
    Alcotest.(check bool) "edit distance reduced or equal" true
      (Extensions.edit_distance inst smoothed <= Extensions.edit_distance inst cfg);
    Alcotest.(check (float 1e-9)) "utility preserved"
      (Config.total_utility inst cfg)
      (Config.total_utility inst smoothed)
  done

(* ----------------------- multi-view display ----------------------- *)

let test_mvd_of_config_identity () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let mvd = Mvd.of_config cfg in
  Alcotest.(check (float 1e-9)) "same objective"
    (Config.total_utility inst cfg)
    (Mvd.total_utility inst mvd);
  Alcotest.(check int) "primary view preserved"
    (Config.item cfg ~user:0 ~slot:0)
    (Mvd.primary mvd ~user:0 ~slot:0)

let test_mvd_enrich_improves () =
  let inst = Example.instance () in
  let cfg = Svgic.Baselines.personalized inst in
  let base = Mvd.total_utility inst (Mvd.of_config cfg) in
  let enriched = Mvd.greedy_enrich inst ~beta:3 cfg in
  let value = Mvd.total_utility inst enriched in
  Alcotest.(check bool)
    (Printf.sprintf "enriched %.3f >= base %.3f" value base)
    true (value >= base);
  (* β = 1 is a no-op. *)
  let identity = Mvd.greedy_enrich inst ~beta:1 cfg in
  Alcotest.(check (float 1e-9)) "beta=1 identity" base (Mvd.total_utility inst identity)

let test_mvd_view_cap () =
  let inst = Example.instance () in
  let cfg = Svgic.Baselines.personalized inst in
  let enriched = Mvd.greedy_enrich inst ~beta:2 cfg in
  for u = 0 to 3 do
    for s = 0 to 2 do
      Alcotest.(check bool) "at most beta views" true
        (List.length (Mvd.views enriched ~user:u ~slot:s) <= 2)
    done
  done

(* ------------------------ dynamic scenario ------------------------ *)

let test_dynamic_join_leave_roundtrip () =
  let rng = Rng.create 501 in
  let inst = Helpers.random_instance rng ~n:5 ~m:7 ~k:2 in
  let session = Dynamic.start rng inst in
  let baseline = Dynamic.total_utility session in
  let profile =
    Dynamic.
      {
        pref = Array.init 7 (fun c -> float_of_int c /. 7.0);
        tau_out = (fun _ _ -> 0.1);
        tau_in = (fun _ _ -> 0.1);
        friends = [| 0; 2 |];
      }
  in
  let session2, newcomer = Dynamic.join session profile in
  Alcotest.(check int) "n grew" 6 (Instance.n (Dynamic.instance session2));
  Alcotest.(check int) "id is last" 5 newcomer;
  (match Config.validate (Dynamic.instance session2) (Config.assignment (Dynamic.config session2)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid after join: %s" msg);
  (* The newcomer only adds utility: everyone else's row is frozen. *)
  Alcotest.(check bool) "utility grew" true
    (Dynamic.total_utility session2 >= baseline -. 1e-9);
  let session3 = Dynamic.leave session2 newcomer in
  Alcotest.(check int) "n back" 5 (Instance.n (Dynamic.instance session3));
  Alcotest.(check (float 1e-9)) "utility restored" baseline
    (Dynamic.total_utility session3)

let test_dynamic_resolve_not_worse_than_greedy_join () =
  let rng = Rng.create 502 in
  let inst = Helpers.random_instance rng ~n:4 ~m:6 ~k:2 in
  let session = Dynamic.start rng inst in
  let profile =
    Dynamic.
      {
        pref = Array.make 6 0.5;
        tau_out = (fun _ _ -> 0.3);
        tau_in = (fun _ _ -> 0.3);
        friends = [| 0; 1; 2; 3 |];
      }
  in
  let joined, _ = Dynamic.join session profile in
  let resolved = Dynamic.resolve rng joined in
  (* Full re-optimization is allowed to shuffle everything; it should
     find at least a comparable solution most of the time. We only
     assert validity here (quality is probabilistic). *)
  match
    Config.validate (Dynamic.instance resolved) (Config.assignment (Dynamic.config resolved))
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid resolve: %s" msg

(* ------------------------------ SEO -------------------------------- *)

let test_seo_plan_feasible () =
  let rng = Rng.create 503 in
  let g = Svgic_graph.Generate.erdos_renyi rng ~n:10 ~p:0.4 in
  let events = Array.init 8 (fun i -> Seo.{ name = Printf.sprintf "event-%d" i }) in
  let pref = Array.init 10 (fun _ -> Array.init 8 (fun _ -> Rng.float rng 1.0)) in
  let plan =
    Seo.organize rng ~graph:g ~events ~rounds:2 ~capacity:4 ~pref
      ~tau:(fun _ _ _ -> 0.2) ~lambda:0.5
  in
  Alcotest.(check bool) "capacity respected" true (Seo.max_event_load plan <= 4);
  (* Every user's schedule has distinct events. *)
  for u = 0 to 9 do
    let schedule = Seo.schedule_of plan ~user:u in
    Alcotest.(check int) "rounds" 2 (Array.length schedule);
    Alcotest.(check bool) "distinct events" true (schedule.(0) <> schedule.(1))
  done;
  Alcotest.(check bool) "welfare positive" true (Seo.total_welfare plan > 0.0)

let test_seo_capacity_guard () =
  let rng = Rng.create 504 in
  let g = Svgic_graph.Generate.erdos_renyi rng ~n:10 ~p:0.4 in
  let events = Array.init 2 (fun i -> Seo.{ name = string_of_int i }) in
  let pref = Array.make_matrix 10 2 0.5 in
  Alcotest.check_raises "not enough capacity"
    (Invalid_argument "Seo.organize: not enough event capacity for a feasible schedule")
    (fun () ->
      ignore
        (Seo.organize rng ~graph:g ~events ~rounds:2 ~capacity:2 ~pref
           ~tau:(fun _ _ _ -> 0.0) ~lambda:0.5))

let suite =
  [
    Alcotest.test_case "commodity uniform scaling" `Quick test_commodity_uniform_scaling;
    Alcotest.test_case "commodity drives choice" `Quick test_commodity_changes_choice;
    Alcotest.test_case "commodity validation" `Quick test_commodity_validation;
    Alcotest.test_case "slot significance uniform" `Quick test_slot_significance_uniform;
    Alcotest.test_case "slot order optimization" `Quick test_slot_order_optimization;
    Alcotest.test_case "group-wise γ=1" `Quick test_groupwise_gamma_one_is_pairwise;
    Alcotest.test_case "group-wise diminishing" `Quick test_groupwise_diminishing_below_pairwise;
    Alcotest.test_case "edit distance of group" `Quick test_edit_distance_group_zero;
    Alcotest.test_case "smoothing no worse" `Quick test_smoothing_no_worse;
    Alcotest.test_case "MVD identity" `Quick test_mvd_of_config_identity;
    Alcotest.test_case "MVD enrichment" `Quick test_mvd_enrich_improves;
    Alcotest.test_case "MVD view cap" `Quick test_mvd_view_cap;
    Alcotest.test_case "dynamic join/leave" `Quick test_dynamic_join_leave_roundtrip;
    Alcotest.test_case "dynamic resolve" `Quick test_dynamic_resolve_not_worse_than_greedy_join;
    Alcotest.test_case "SEO feasible plan" `Quick test_seo_plan_feasible;
    Alcotest.test_case "SEO capacity guard" `Quick test_seo_capacity_guard;
  ]
