(* Tests for the local-search polish pass, the exact MVD integer
   program, and instance/configuration serialization. *)

module Rng = Svgic_util.Rng
module Instance = Svgic.Instance
module Config = Svgic.Config
module Polish = Svgic.Polish
module Mvd = Svgic.Mvd
module Serialize = Svgic.Serialize
module Example = Svgic.Example_paper

(* ---------------------------- polish ------------------------------ *)

let test_polish_never_decreases () =
  let rng = Rng.create 800 in
  for _ = 1 to 6 do
    let inst = Helpers.random_instance rng ~n:6 ~m:8 ~k:3 in
    let cfg = Svgic.Baselines.personalized inst in
    let polished = Polish.improve inst cfg in
    Alcotest.(check bool) "monotone" true
      (Config.total_utility inst polished
      >= Config.total_utility inst cfg -. 1e-9);
    match Config.validate inst (Config.assignment polished) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "invalid polished config: %s" msg
  done

let test_polish_fixed_point_of_optimum () =
  (* The proven optimum of the running example is a local optimum: the
     polish pass must leave its value unchanged. *)
  let inst = Example.instance () in
  let optimal = Example.optimal_config inst in
  let polished = Polish.improve inst optimal in
  Alcotest.(check (float 1e-9)) "optimum unchanged"
    (Config.total_utility inst optimal)
    (Config.total_utility inst polished)

let test_polish_improves_bad_start () =
  (* Starting from a deliberately bad configuration (everyone's
     *least* preferred items), polishing must strictly improve. *)
  let inst = Example.instance () in
  let worst =
    Config.make inst
      (Array.init 4 (fun u ->
           let scores = Array.init 5 (fun c -> -.Instance.pref inst u c) in
           Svgic_util.Select.top_k 3 scores))
  in
  let polished = Polish.improve inst worst in
  Alcotest.(check bool) "strict improvement" true
    (Config.total_utility inst polished > Config.total_utility inst worst)

let test_polish_single_user () =
  let rng = Rng.create 801 in
  let inst = Helpers.random_instance rng ~n:5 ~m:7 ~k:2 in
  let cfg = Svgic.Baselines.group inst in
  let improved = Polish.improve_user inst cfg 2 in
  (* Other rows untouched. *)
  for u = 0 to 4 do
    if u <> 2 then
      Alcotest.(check (array int)) "frozen row" (Config.row cfg u)
        (Config.row improved u)
  done;
  Alcotest.(check bool) "no decrease" true
    (Config.total_utility inst improved >= Config.total_utility inst cfg -. 1e-9)

let test_gap_estimate () =
  let inst = Example.instance () in
  let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
  let gap = Polish.gap_estimate inst relax (Example.optimal_config inst) in
  Alcotest.(check bool) "gap in (0.9, 1]" true (gap > 0.9 && gap <= 1.0 +. 1e-9)

(* --------------------------- MVD exact ----------------------------- *)

let test_mvd_exact_dominates_greedy () =
  let rng = Rng.create 802 in
  let inst = Helpers.random_instance rng ~n:3 ~m:4 ~k:2 in
  match Mvd.exact_ip inst ~beta:2 with
  | None -> Alcotest.fail "MVD IP found no incumbent"
  | Some (exact, result) ->
      Alcotest.(check bool) "proved" true result.proved_optimal;
      let exact_value = Mvd.total_utility inst exact in
      (* Greedy enrichment of the plain optimum is a feasible MVD
         solution, so the exact optimum dominates it. *)
      let plain = Svgic.Baselines.exhaustive inst in
      let greedy = Mvd.greedy_enrich inst ~beta:2 plain in
      Alcotest.(check bool)
        (Printf.sprintf "exact %.4f >= greedy %.4f" exact_value
           (Mvd.total_utility inst greedy))
        true
        (exact_value >= Mvd.total_utility inst greedy -. 1e-6);
      (* And beta = 1 exact MVD equals the plain SVGIC optimum. *)
      (match Mvd.exact_ip inst ~beta:1 with
      | Some (single, _) ->
          Alcotest.(check (float 1e-5)) "beta=1 = plain optimum"
            (Config.total_utility inst plain)
            (Mvd.total_utility inst single)
      | None -> Alcotest.fail "beta=1 IP failed")

let test_mvd_exact_respects_beta () =
  let rng = Rng.create 803 in
  let inst = Helpers.random_instance rng ~n:3 ~m:4 ~k:2 in
  match Mvd.exact_ip inst ~beta:2 with
  | None -> Alcotest.fail "no incumbent"
  | Some (mvd, _) ->
      for u = 0 to 2 do
        for s = 0 to 1 do
          let views = Mvd.views mvd ~user:u ~slot:s in
          Alcotest.(check bool) "within beta" true (List.length views <= 2);
          Alcotest.(check bool) "has a primary" true (List.length views >= 1)
        done
      done

(* ------------------------- serialization -------------------------- *)

let test_instance_roundtrip () =
  let inst = Example.instance ~lambda:0.4 () in
  let text = Serialize.instance_to_string inst in
  match Serialize.instance_of_string text with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok restored ->
      Alcotest.(check int) "n" (Instance.n inst) (Instance.n restored);
      Alcotest.(check int) "m" (Instance.m inst) (Instance.m restored);
      Alcotest.(check int) "k" (Instance.k inst) (Instance.k restored);
      Alcotest.(check (float 1e-12)) "lambda" (Instance.lambda inst)
        (Instance.lambda restored);
      for u = 0 to 3 do
        for c = 0 to 4 do
          Alcotest.(check (float 1e-12)) "pref" (Instance.pref inst u c)
            (Instance.pref restored u c)
        done
      done;
      Array.iter
        (fun (u, v) ->
          for c = 0 to 4 do
            Alcotest.(check (float 1e-12)) "tau" (Instance.tau inst u v c)
              (Instance.tau restored u v c)
          done)
        (Svgic_graph.Graph.edges (Instance.graph inst));
      (* Objectives agree on a reference configuration. *)
      let cfg = Example.optimal_config inst in
      let restored_cfg = Config.make restored (Config.assignment cfg) in
      Alcotest.(check (float 1e-9)) "objective preserved"
        (Config.total_utility inst cfg)
        (Config.total_utility restored restored_cfg)

let test_config_roundtrip () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let text = Serialize.config_to_string cfg inst in
  match Serialize.config_of_string inst text with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok restored ->
      Alcotest.(check bool) "same assignment" true
        (Config.assignment restored = Config.assignment cfg)

let test_serialize_rejects_garbage () =
  (match Serialize.instance_of_string "hello world" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  let inst = Example.instance () in
  match Serialize.config_of_string inst "svgic-config 1\n2 2\n0 1\n0 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dimension mismatch accepted"

let test_file_roundtrip () =
  let inst = Example.instance () in
  let path = Filename.temp_file "svgic" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.write_file path (Serialize.instance_to_string inst);
      match Serialize.instance_of_string (Serialize.read_file path) with
      | Ok restored -> Alcotest.(check int) "n" 4 (Instance.n restored)
      | Error msg -> Alcotest.failf "file roundtrip failed: %s" msg)

let suite =
  [
    Alcotest.test_case "polish monotone" `Quick test_polish_never_decreases;
    Alcotest.test_case "polish fixed point" `Quick test_polish_fixed_point_of_optimum;
    Alcotest.test_case "polish improves" `Quick test_polish_improves_bad_start;
    Alcotest.test_case "polish single user" `Quick test_polish_single_user;
    Alcotest.test_case "gap estimate" `Quick test_gap_estimate;
    Alcotest.test_case "MVD exact vs greedy" `Slow test_mvd_exact_dominates_greedy;
    Alcotest.test_case "MVD exact beta" `Quick test_mvd_exact_respects_beta;
    Alcotest.test_case "instance roundtrip" `Quick test_instance_roundtrip;
    Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
  ]
