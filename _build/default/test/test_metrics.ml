(* Tests for the Section 6.1 evaluation metrics. *)

module Rng = Svgic_util.Rng
module Instance = Svgic.Instance
module Config = Svgic.Config
module Metrics = Svgic.Metrics
module Baselines = Svgic.Baselines
module Example = Svgic.Example_paper

let group_cfg inst = Baselines.group ~fairness:0.0 inst
let per_cfg inst = Baselines.personalized inst

let test_group_config_extremes () =
  let inst = Example.instance () in
  let cfg = group_cfg inst in
  let intra, inter = Metrics.intra_inter_pct inst cfg in
  Alcotest.(check (float 1e-9)) "intra = 1" 1.0 intra;
  Alcotest.(check (float 1e-9)) "inter = 0" 0.0 inter;
  Alcotest.(check (float 1e-9)) "codisplay = 1" 1.0 (Metrics.codisplay_rate inst cfg);
  Alcotest.(check (float 1e-9)) "alone = 0" 0.0 (Metrics.alone_rate inst cfg);
  (* The single subgroup is the whole network: normalized density 1. *)
  Alcotest.(check (float 1e-9)) "density = 1" 1.0 (Metrics.normalized_density inst cfg)

let test_personalized_config_extremes () =
  let inst = Example.instance () in
  let cfg = per_cfg inst in
  (* On the example, PER's rows share no (item, slot) cell across
     friends (checked in the paper's Table 9). *)
  let intra, inter = Metrics.intra_inter_pct inst cfg in
  Alcotest.(check (float 1e-9)) "intra = 0" 0.0 intra;
  Alcotest.(check (float 1e-9)) "inter = 1" 1.0 inter;
  Alcotest.(check (float 1e-9)) "codisplay = 0" 0.0 (Metrics.codisplay_rate inst cfg);
  Alcotest.(check (float 1e-9)) "alone = 1" 1.0 (Metrics.alone_rate inst cfg)

let test_split_percentages () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let pref_part, social_part = Metrics.utility_split inst cfg in
  Alcotest.(check (float 1e-9)) "personal utility" 4.0 pref_part;
  Alcotest.(check (float 1e-9)) "social utility" 1.175 social_part

let test_regret_bounds_and_ordering () =
  let inst = Example.instance () in
  let optimal = Example.optimal_config inst in
  let regrets = Metrics.regret_ratios inst optimal in
  Array.iter
    (fun r -> Alcotest.(check bool) "in [0,1]" true (r >= 0.0 && r <= 1.0))
    regrets;
  (* The optimal configuration should leave less average regret than
     the personalized one (PER forgoes all social utility). *)
  let per_regrets = Metrics.regret_ratios inst (per_cfg inst) in
  Alcotest.(check bool) "optimal less regret on average" true
    (Svgic_util.Stats.mean regrets < Svgic_util.Stats.mean per_regrets)

let test_happiness_of_selfish_dictator () =
  (* A user whose selfish optimum is realized has happiness 1. Build an
     instance with one isolated user: her top-k items give hap = 1. *)
  let g = Svgic_graph.Graph.of_edges ~n:1 [] in
  let pref = [| [| 0.9; 0.5; 0.1 |] |] in
  let inst =
    Instance.create ~graph:g ~m:3 ~k:2 ~lambda:0.5 ~pref ~tau:(fun _ _ _ -> 0.0)
  in
  let cfg = Baselines.personalized inst in
  Alcotest.(check (float 1e-9)) "happiness 1" 1.0 (Metrics.happiness inst cfg 0);
  Alcotest.(check (float 1e-9)) "regret 0" 0.0 (Metrics.regret_ratios inst cfg).(0)

let test_regret_cdf_monotone () =
  let inst = Example.instance () in
  let cfg = per_cfg inst in
  let points = [| 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  let cdf = Metrics.regret_cdf inst cfg ~points in
  for i = 0 to Array.length cdf - 2 do
    Alcotest.(check bool) "monotone" true (cdf.(i) <= cdf.(i + 1))
  done;
  Alcotest.(check (float 1e-9)) "cdf at 1 is 1" 1.0 cdf.(Array.length cdf - 1)

let test_normalized_density_singletons () =
  let inst = Example.instance () in
  let cfg = per_cfg inst in
  (* All-singleton partitions have zero density. *)
  Alcotest.(check (float 1e-9)) "density 0" 0.0 (Metrics.normalized_density inst cfg)

let test_intra_inter_sum_to_one () =
  let rng = Rng.create 300 in
  for _ = 1 to 5 do
    let inst = Helpers.random_instance rng ~n:6 ~m:6 ~k:2 in
    let relax = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst in
    let cfg = Svgic.Algorithms.avg rng inst relax in
    let intra, inter = Metrics.intra_inter_pct inst cfg in
    Alcotest.(check (float 1e-9)) "sums to one" 1.0 (intra +. inter)
  done

let suite =
  [
    Alcotest.test_case "group-config extremes" `Quick test_group_config_extremes;
    Alcotest.test_case "personalized extremes" `Quick test_personalized_config_extremes;
    Alcotest.test_case "utility split values" `Quick test_split_percentages;
    Alcotest.test_case "regret bounds" `Quick test_regret_bounds_and_ordering;
    Alcotest.test_case "selfish happiness" `Quick test_happiness_of_selfish_dictator;
    Alcotest.test_case "regret CDF" `Quick test_regret_cdf_monotone;
    Alcotest.test_case "density with singletons" `Quick test_normalized_density_singletons;
    Alcotest.test_case "intra+inter = 1" `Quick test_intra_inter_sum_to_one;
  ]
