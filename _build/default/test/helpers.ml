(* Shared fixtures for the core test suites. *)

module Rng = Svgic_util.Rng
module Graph = Svgic_graph.Graph
module Generate = Svgic_graph.Generate
module Instance = Svgic.Instance

(* A small random instance with dense-ish social structure; sizes stay
   tiny so the exact paths (simplex LP, IP, exhaustive) remain fast. *)
let random_instance ?(lambda = 0.5) rng ~n ~m ~k =
  let g = Generate.erdos_renyi rng ~n ~p:0.5 in
  let pref = Array.init n (fun _ -> Array.init m (fun _ -> Rng.float rng 1.0)) in
  let tau_table = Hashtbl.create 16 in
  Array.iter
    (fun (u, v) ->
      Hashtbl.replace tau_table (u, v) (Array.init m (fun _ -> Rng.float rng 0.5)))
    (Graph.edges g);
  let tau u v c =
    match Hashtbl.find_opt tau_table (u, v) with
    | Some row -> row.(c)
    | None -> 0.0
  in
  Instance.create ~graph:g ~m ~k ~lambda ~pref ~tau

let paper_instance ?lambda () = Svgic.Example_paper.instance ?lambda ()

(* Paper-scaled utility (λ = 1/2, scaled by 2). *)
let paper_value inst cfg =
  Svgic.Example_paper.paper_scale *. Svgic.Config.total_utility inst cfg
