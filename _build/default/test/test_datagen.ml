(* Tests for the dataset surrogates and the user-study pipeline. *)

module Rng = Svgic_util.Rng
module Graph = Svgic_graph.Graph
module Instance = Svgic.Instance
module Utility_model = Svgic_data.Utility_model
module Datasets = Svgic_data.Datasets
module User_study = Svgic_data.User_study

let test_model_ranges () =
  let rng = Rng.create 700 in
  let g = Svgic_graph.Generate.erdos_renyi rng ~n:12 ~p:0.3 in
  List.iter
    (fun kind ->
      let model = Utility_model.generate kind rng g ~m:15 in
      Array.iter
        (fun row ->
          Array.iter
            (fun p ->
              Alcotest.(check bool) "pref in [0,1]" true (p >= 0.0 && p <= 1.0))
            row)
        (Utility_model.pref model);
      Array.iter
        (fun (u, v) ->
          for c = 0 to 14 do
            let t = Utility_model.tau model u v c in
            Alcotest.(check bool) "tau >= 0" true (t >= 0.0);
            Alcotest.(check bool) "tau bounded" true (t <= 1.0)
          done)
        (Graph.edges g);
      (* Off-edge τ is zero. *)
      let found_non_edge = ref false in
      for u = 0 to 11 do
        for v = 0 to 11 do
          if u <> v && (not (Graph.has_edge g u v)) && not !found_non_edge then begin
            found_non_edge := true;
            Alcotest.(check (float 1e-12)) "off-edge tau" 0.0
              (Utility_model.tau model u v 0)
          end
        done
      done)
    [ Utility_model.Piert; Utility_model.Agree; Utility_model.Gree ]

let test_each_user_has_a_favorite () =
  (* The per-user normalization guarantees a clear favorite item. *)
  let rng = Rng.create 701 in
  let g = Svgic_graph.Generate.erdos_renyi rng ~n:8 ~p:0.3 in
  let model = Utility_model.generate Utility_model.Piert rng g ~m:20 in
  Array.iter
    (fun row ->
      let best = Array.fold_left Float.max 0.0 row in
      Alcotest.(check bool) "favorite is substantial" true (best >= 0.25))
    (Utility_model.pref model)

let test_agree_influence_uniform () =
  (* AGREE: τ(u,v,c)/affinity-part must be constant across edges; test
     via an instance where two edges share an item with equal
     affinities is brittle, so instead check the model invariant
     indirectly: for a fixed item, τ ratios across edges equal affinity
     ratios. Simplest observable: AGREE never exceeds the constant
     influence mean. *)
  let rng = Rng.create 702 in
  let g = Svgic_graph.Generate.erdos_renyi rng ~n:10 ~p:0.4 in
  let params = { Utility_model.default_params with influence_mean = 0.2 } in
  let model = Utility_model.generate ~params Utility_model.Agree rng g ~m:10 in
  Array.iter
    (fun (u, v) ->
      for c = 0 to 9 do
        Alcotest.(check bool) "bounded by influence" true
          (Utility_model.tau model u v c <= 0.2 +. 1e-9)
      done)
    (Graph.edges g)

let test_dataset_shapes () =
  let rng = Rng.create 703 in
  List.iter
    (fun preset ->
      let inst = Datasets.make preset rng ~n:20 ~m:30 ~k:4 ~lambda:0.5 in
      Alcotest.(check int) (Datasets.name preset ^ " n") 20 (Instance.n inst);
      Alcotest.(check int) (Datasets.name preset ^ " m") 30 (Instance.m inst);
      Alcotest.(check int) (Datasets.name preset ^ " k") 4 (Instance.k inst))
    [ Datasets.Timik; Datasets.Epinions; Datasets.Yelp ]

let test_epinions_sparser_than_timik () =
  let rng = Rng.create 704 in
  let timik = Datasets.graph Datasets.Timik rng ~n:40 in
  let epinions = Datasets.graph Datasets.Epinions rng ~n:40 in
  Alcotest.(check bool)
    (Printf.sprintf "epinions %.3f < timik %.3f" (Graph.density epinions)
       (Graph.density timik))
    true
    (Graph.density epinions < Graph.density timik)

let test_epinions_directed () =
  let rng = Rng.create 705 in
  let g = Datasets.graph Datasets.Epinions rng ~n:40 in
  (* One-directional trust edges: strictly fewer directed edges than
     2 × pairs. *)
  Alcotest.(check bool) "not fully reciprocal" true
    (Graph.num_edges g < 2 * Array.length (Graph.pairs g))

let test_cohort_lambdas () =
  let rng = Rng.create 706 in
  let cohort = User_study.make_cohort rng in
  let lambdas = User_study.all_lambdas cohort in
  Alcotest.(check int) "44 participants" 44 (Array.length lambdas);
  Array.iter
    (fun l ->
      Alcotest.(check bool) "lambda in observed range" true (l >= 0.15 && l <= 0.85))
    lambdas;
  let mean = Svgic_util.Stats.mean lambdas in
  Alcotest.(check bool) "mean near 0.53" true (Float.abs (mean -. 0.53) < 0.1)

let test_user_study_pipeline () =
  let rng = Rng.create 707 in
  let cohort = User_study.make_cohort ~participants:18 ~group_size:6 ~m:15 ~k:4 rng in
  let methods =
    [
      ( "AVG",
        fun inst ->
          let relax = Svgic.Relaxation.solve inst in
          Svgic.Algorithms.avg (Rng.create 1) inst relax );
      ("PER", Svgic.Baselines.personalized);
    ]
  in
  let outcomes = User_study.run rng cohort methods in
  Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
  List.iter
    (fun (o : User_study.method_outcome) ->
      Alcotest.(check int) "per-participant rows" 18 (Array.length o.utilities);
      Array.iter
        (fun s -> Alcotest.(check bool) "likert range" true (s >= 1.0 && s <= 5.0))
        o.satisfactions;
      let spearman, pearson = User_study.correlation o in
      Alcotest.(check bool) "correlations bounded" true
        (Float.abs spearman <= 1.0 && Float.abs pearson <= 1.0))
    outcomes;
  (* AVG should beat PER on mean utility (it optimizes the objective
     the satisfaction is derived from). *)
  match outcomes with
  | [ avg; per ] ->
      Alcotest.(check bool)
        (Printf.sprintf "AVG %.3f >= PER %.3f" avg.mean_utility per.mean_utility)
        true
        (avg.mean_utility >= per.mean_utility -. 1e-6)
  | _ -> Alcotest.fail "unexpected outcome count"

let test_satisfaction_monotone_in_expectation () =
  let rng = Rng.create 708 in
  let low = Array.init 200 (fun _ -> User_study.satisfaction_of_utility rng ~utility:0.2 ~bound:1.0) in
  let high = Array.init 200 (fun _ -> User_study.satisfaction_of_utility rng ~utility:0.9 ~bound:1.0) in
  Alcotest.(check bool) "higher utility, higher satisfaction" true
    (Svgic_util.Stats.mean high > Svgic_util.Stats.mean low +. 0.5)

let suite =
  [
    Alcotest.test_case "model ranges" `Quick test_model_ranges;
    Alcotest.test_case "favorites exist" `Quick test_each_user_has_a_favorite;
    Alcotest.test_case "AGREE uniform influence" `Quick test_agree_influence_uniform;
    Alcotest.test_case "dataset shapes" `Quick test_dataset_shapes;
    Alcotest.test_case "epinions sparser" `Quick test_epinions_sparser_than_timik;
    Alcotest.test_case "epinions directed" `Quick test_epinions_directed;
    Alcotest.test_case "cohort lambdas" `Quick test_cohort_lambdas;
    Alcotest.test_case "user-study pipeline" `Quick test_user_study_pipeline;
    Alcotest.test_case "satisfaction monotone" `Quick test_satisfaction_monotone_in_expectation;
  ]
