test/test_polish_serialize.ml: Alcotest Array Filename Fun Helpers List Printf Svgic Svgic_graph Svgic_util Sys
