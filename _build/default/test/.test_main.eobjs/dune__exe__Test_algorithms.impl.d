test/test_algorithms.ml: Alcotest Array Float Gen Helpers List Printf QCheck QCheck_alcotest Result Svgic Svgic_data Svgic_util Test
