test/test_st.ml: Alcotest Helpers Printf Svgic Svgic_graph Svgic_util
