test/helpers.ml: Array Hashtbl Svgic Svgic_graph Svgic_util
