test/test_graph.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Svgic_graph Svgic_util Test
