test/test_datagen.ml: Alcotest Array Float List Printf Svgic Svgic_data Svgic_graph Svgic_util
