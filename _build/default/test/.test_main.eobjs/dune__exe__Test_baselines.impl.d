test/test_baselines.ml: Alcotest Array Hashtbl Helpers List Option Printf Svgic Svgic_graph Svgic_util
