test/test_core.ml: Alcotest Array Helpers List Printf String Svgic Svgic_graph Svgic_lp Svgic_util
