test/test_extensions.ml: Alcotest Array Float Helpers List Printf Svgic Svgic_graph Svgic_util
