test/test_reductions.ml: Alcotest Array List Svgic Svgic_data Svgic_graph Svgic_util
