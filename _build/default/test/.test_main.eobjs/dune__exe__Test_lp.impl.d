test/test_lp.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Svgic_lp Svgic_util Test
