test/test_metrics.ml: Alcotest Array Helpers Svgic Svgic_graph Svgic_util
