(* Tests for the executable hardness constructions. *)

module Rng = Svgic_util.Rng
module Graph = Svgic_graph.Graph
module Instance = Svgic.Instance
module Config = Svgic.Config
module Reductions = Svgic_data.Reductions

let lit var positive = Reductions.{ var; positive }

(* (a1 ∨ ¬a3 ∨ a4) ∧ (¬a2 ∨ a3 ∨ ¬a4) — the paper's Figure 2 formula. *)
let figure2_formula =
  Reductions.
    {
      nvar = 4;
      clauses =
        [|
          (lit 0 true, lit 2 false, lit 3 true);
          (lit 1 false, lit 2 true, lit 3 false);
        |];
    }

let test_count_satisfied () =
  let formula = figure2_formula in
  Alcotest.(check int) "all true: clause 1 by a1, clause 2 by a3" 2
    (Reductions.count_satisfied formula [| true; true; true; true |]);
  Alcotest.(check int) "all false" 2
    (Reductions.count_satisfied formula [| false; false; false; false |])

let test_best_assignment () =
  let formula = figure2_formula in
  let _, best = Reductions.best_assignment formula in
  Alcotest.(check int) "satisfiable" 2 best

let test_e3sat_instance_shape () =
  let formula = figure2_formula in
  let inst = Reductions.max_e3sat_instance formula in
  Alcotest.(check int) "n = 7*mcla + nvar" (7 * 2 + 4) (Instance.n inst);
  Alcotest.(check int) "m = 3*mcla + 2*nvar" (3 * 2 + 2 * 4) (Instance.m inst);
  Alcotest.(check int) "k = 1" 1 (Instance.k inst);
  (* 3 clause edges + 6 variable edges per clause = 9·mcla pairs. *)
  Alcotest.(check int) "9*mcla friend pairs" (9 * 2)
    (Array.length (Instance.pairs inst))

let test_e3sat_assignment_value () =
  let formula = figure2_formula in
  let inst = Reductions.max_e3sat_instance formula in
  let assignment, satisfied = Reductions.best_assignment formula in
  let cfg = Reductions.assignment_config formula inst assignment in
  Alcotest.(check (float 1e-9)) "objective = 2χ + 6·mcla"
    (Reductions.max_e3sat_bound formula ~satisfied)
    (Config.total_utility inst cfg);
  (* Also for a deliberately bad assignment the bound formula holds
     with its own χ. *)
  let bad = [| false; true; false; true |] in
  let cfg_bad = Reductions.assignment_config formula inst bad in
  Alcotest.(check bool) "bad assignment no better" true
    (Config.total_utility inst cfg_bad <= Config.total_utility inst cfg +. 1e-9);
  Alcotest.(check (float 1e-9)) "bad value matches its χ"
    (Reductions.max_e3sat_bound formula
       ~satisfied:(Reductions.count_satisfied formula bad))
    (Config.total_utility inst cfg_bad)

let test_e3sat_qcheck_random_formulas () =
  let rng = Rng.create 600 in
  for _trial = 1 to 10 do
    let nvar = 3 + Rng.int rng 3 in
    let mcla = 1 + Rng.int rng 3 in
    let random_lit () = lit (Rng.int rng nvar) (Rng.bool rng) in
    (* Three distinct variables per clause, as E3SAT requires. *)
    let random_clause () =
      let vars = Rng.sample_without_replacement rng 3 nvar in
      ( lit vars.(0) (Rng.bool rng),
        lit vars.(1) (Rng.bool rng),
        lit vars.(2) (Rng.bool rng) )
    in
    ignore (random_lit ());
    let formula =
      Reductions.{ nvar; clauses = Array.init mcla (fun _ -> random_clause ()) }
    in
    let inst = Reductions.max_e3sat_instance formula in
    let assignment, satisfied = Reductions.best_assignment formula in
    let cfg = Reductions.assignment_config formula inst assignment in
    Alcotest.(check (float 1e-9)) "value formula"
      (Reductions.max_e3sat_bound formula ~satisfied)
      (Config.total_utility inst cfg)
  done

let test_max_k3p_triangle () =
  (* A single triangle: the best packing covers its 3 edges. *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ] in
  let inst = Reductions.max_k3p_instance g in
  (* Items: 3 edges + 1 triangle. *)
  Alcotest.(check int) "items" 4 (Instance.m inst);
  let best = Svgic.Baselines.exhaustive inst in
  Alcotest.(check (float 1e-9)) "packing value 3" 3.0
    (Config.total_utility inst best)

let test_max_k3p_path () =
  (* A path of 3 edges 0-1-2-3: best packing is two disjoint edges. *)
  let g =
    Graph.of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 3); (3, 2) ]
  in
  let inst = Reductions.max_k3p_instance g in
  let best = Svgic.Baselines.exhaustive inst in
  Alcotest.(check (float 1e-9)) "packing value 2" 2.0
    (Config.total_utility inst best)

let test_dks_gadget () =
  (* A 4-clique plus a pendant: the densest 3 vertices induce 3 edges. *)
  let clique =
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
    |> List.concat_map (fun (u, v) -> [ (u, v); (v, u) ])
  in
  let g = Graph.of_edges ~n:5 (clique @ [ (3, 4); (4, 3) ]) in
  let inst, m_cap = Reductions.dks_instance g ~khat:3 in
  Alcotest.(check int) "cap = khat" 3 m_cap;
  Alcotest.(check int) "padded to multiple" 6 (Instance.n inst);
  Alcotest.(check int) "m = n/khat" 2 (Instance.m inst);
  (* Co-display item 0 to the triangle {0,1,2}: ST objective = 3. *)
  let assign = [| [| 0 |]; [| 0 |]; [| 0 |]; [| 1 |]; [| 1 |]; [| 1 |] |] in
  let cfg = Config.make inst assign in
  Alcotest.(check (float 1e-9)) "densest subgraph value" 3.0
    (Config.total_utility inst cfg);
  Alcotest.(check bool) "feasible under cap" true
    (Svgic.St.feasible inst ~m_cap cfg)

let suite =
  [
    Alcotest.test_case "count satisfied" `Quick test_count_satisfied;
    Alcotest.test_case "best assignment" `Quick test_best_assignment;
    Alcotest.test_case "E3SAT instance shape" `Quick test_e3sat_instance_shape;
    Alcotest.test_case "E3SAT assignment value" `Quick test_e3sat_assignment_value;
    Alcotest.test_case "E3SAT random formulas" `Quick test_e3sat_qcheck_random_formulas;
    Alcotest.test_case "Max-K3P triangle" `Quick test_max_k3p_triangle;
    Alcotest.test_case "Max-K3P path" `Quick test_max_k3p_path;
    Alcotest.test_case "DkS gadget" `Quick test_dks_gadget;
  ]
