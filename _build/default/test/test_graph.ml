(* Tests for the social-graph substrate. *)

module Graph = Svgic_graph.Graph
module Generate = Svgic_graph.Generate
module Community = Svgic_graph.Community
module Rng = Svgic_util.Rng

let test_of_edges_basics () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 0); (0, 1); (2, 2); (1, 2) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "edges deduped, self-loop dropped" 3 (Graph.num_edges g);
  Alcotest.(check bool) "has 0->1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "no 2->1" false (Graph.has_edge g 2 1);
  Alcotest.(check (array (pair int int))) "pairs" [| (0, 1); (1, 2) |] (Graph.pairs g);
  Alcotest.(check (array int)) "out 1" [| 0; 2 |] (Graph.out_neighbors g 1);
  Alcotest.(check (array int)) "in 1" [| 0 |] (Graph.in_neighbors g 1);
  Alcotest.(check (array int)) "und 1" [| 0; 2 |] (Graph.neighbors_undirected g 1)

let test_of_edges_rejects_bad () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 5) ]))

let test_density () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 0); (2, 3) ] in
  (* 2 pairs out of 6 possible. *)
  Alcotest.(check (float 1e-9)) "density" (2.0 /. 6.0) (Graph.density g);
  let empty = Graph.of_edges ~n:1 [] in
  Alcotest.(check (float 1e-9)) "singleton density" 0.0 (Graph.density empty)

let test_induced_density () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (0, 2); (3, 4) ] in
  Alcotest.(check (float 1e-9)) "triangle" 1.0 (Graph.induced_density g [| 0; 1; 2 |]);
  Alcotest.(check (float 1e-9)) "pair + isolated" (1.0 /. 3.0)
    (Graph.induced_density g [| 0; 3; 4 |]);
  Alcotest.(check int) "induced pair count" 3 (Graph.induced_pair_count g [| 0; 1; 2 |])

let test_ego_and_subgraph () =
  (* Path 0-1-2-3-4. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 3); (3, 2); (3, 4); (4, 3) ] in
  Alcotest.(check (array int)) "2-hop ego of 0" [| 0; 1; 2 |] (Graph.ego g ~center:0 ~hops:2);
  let sub, mapping = Graph.subgraph g [| 1; 2; 3 |] in
  Alcotest.(check int) "sub n" 3 (Graph.n sub);
  Alcotest.(check (array int)) "mapping" [| 1; 2; 3 |] mapping;
  Alcotest.(check (array (pair int int))) "sub pairs" [| (0, 1); (1, 2) |] (Graph.pairs sub)

let test_connected_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let comps = Graph.connected_components g in
  let sizes = Array.to_list comps |> List.map List.length |> List.sort compare in
  Alcotest.(check (list int)) "component sizes" [ 1; 2; 3 ] sizes

let test_erdos_renyi () =
  let rng = Rng.create 1 in
  let g = Generate.erdos_renyi rng ~n:60 ~p:0.2 in
  Alcotest.(check int) "n" 60 (Graph.n g);
  let d = Graph.density g in
  Alcotest.(check bool) (Printf.sprintf "density near p (%.3f)" d) true
    (Float.abs (d -. 0.2) < 0.05);
  (* Reciprocal by default. *)
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "reciprocal" true (Graph.has_edge g u v && Graph.has_edge g v u))
    (Graph.pairs g)

let test_erdos_renyi_directed () =
  let rng = Rng.create 2 in
  let g = Generate.erdos_renyi ~reciprocal:false rng ~n:40 ~p:0.2 in
  Alcotest.(check int) "one direction per pair" (Array.length (Graph.pairs g))
    (Graph.num_edges g)

let test_barabasi_albert () =
  let rng = Rng.create 3 in
  let g = Generate.barabasi_albert rng ~n:80 ~attach:3 in
  Alcotest.(check int) "n" 80 (Graph.n g);
  (* Every late vertex connects. *)
  for u = 4 to 79 do
    Alcotest.(check bool) "attached" true (Graph.degree_undirected g u >= 1)
  done;
  (* Heavy tail: some hub should clearly beat the attach parameter. *)
  let max_degree = ref 0 in
  for u = 0 to 79 do
    max_degree := max !max_degree (Graph.degree_undirected g u)
  done;
  Alcotest.(check bool) "hub exists" true (!max_degree >= 10)

let test_watts_strogatz () =
  let rng = Rng.create 4 in
  let g = Generate.watts_strogatz rng ~n:50 ~neighbors:2 ~beta:0.1 in
  Alcotest.(check int) "n" 50 (Graph.n g);
  let pairs = Array.length (Graph.pairs g) in
  (* Ring lattice has n*neighbors pairs; rewiring can only collide a
     few. *)
  Alcotest.(check bool) "pair count near lattice" true (pairs >= 90 && pairs <= 100)

let test_planted_partition () =
  let rng = Rng.create 5 in
  let g, labels = Generate.planted_partition rng ~n:60 ~communities:3 ~p_in:0.5 ~p_out:0.02 in
  Alcotest.(check int) "labels length" 60 (Array.length labels);
  Array.iter (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 3)) labels;
  (* Intra-block pairs should dominate. *)
  let intra = ref 0 and inter = ref 0 in
  Array.iter
    (fun (u, v) -> if labels.(u) = labels.(v) then incr intra else incr inter)
    (Graph.pairs g);
  Alcotest.(check bool) "communities visible" true (!intra > 3 * !inter)

let test_random_walk_sample () =
  let rng = Rng.create 6 in
  let g = Generate.barabasi_albert rng ~n:100 ~attach:2 in
  let sample = Generate.random_walk_sample rng g ~size:30 in
  Alcotest.(check int) "size" 30 (Array.length sample);
  let distinct = List.sort_uniq compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 30 (List.length distinct)

let two_cliques_bridge () =
  let clique offset =
    List.concat
      (List.init 5 (fun i ->
           List.init 5 (fun j ->
               if i <> j then [ (offset + i, offset + j) ] else [])))
    |> List.concat
  in
  Graph.of_edges ~n:10 (clique 0 @ clique 5 @ [ (4, 5); (5, 4) ])

let test_label_propagation () =
  let g = two_cliques_bridge () in
  let rng = Rng.create 7 in
  let labels = Community.label_propagation rng g in
  (* The two cliques should be internally uniform. *)
  for i = 1 to 3 do
    Alcotest.(check int) "clique 1 uniform" labels.(0) labels.(i)
  done;
  for i = 6 to 9 do
    Alcotest.(check int) "clique 2 uniform" labels.(5) labels.(i)
  done

let test_greedy_modularity () =
  let g = two_cliques_bridge () in
  let labels = Community.greedy_modularity g in
  let count = Array.fold_left (fun acc l -> max acc (l + 1)) 0 labels in
  Alcotest.(check int) "two communities" 2 count;
  Alcotest.(check bool) "separated" true (labels.(0) <> labels.(9));
  let q = Community.modularity g labels in
  Alcotest.(check bool) "good modularity" true (q > 0.3)

let test_modularity_bounds () =
  let g = two_cliques_bridge () in
  let all_same = Array.make 10 0 in
  Alcotest.(check (float 1e-9)) "single community Q" 0.0
    (Community.modularity g all_same);
  let singletons = Array.init 10 (fun i -> i) in
  Alcotest.(check bool) "singletons Q negative" true
    (Community.modularity g singletons < 0.0)

let test_balanced_partition () =
  let rng = Rng.create 8 in
  let g = two_cliques_bridge () in
  let labels = Community.balanced_partition rng g ~parts:3 in
  let groups = Community.groups_of_labels labels in
  Alcotest.(check int) "three parts" 3 (Array.length groups);
  Array.iter
    (fun members ->
      Alcotest.(check bool) "size within ceiling" true (Array.length members <= 4))
    groups;
  let total = Array.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  Alcotest.(check int) "covers everyone" 10 total

let test_groups_of_labels () =
  let groups = Community.groups_of_labels [| 2; 0; 2; 1 |] in
  Alcotest.(check int) "count" 3 (Array.length groups);
  (* compact_labels maps first-seen label to 0. *)
  Alcotest.(check (array int)) "group of first label" [| 0; 2 |] groups.(0)

let qcheck_props =
  let open QCheck in
  let edge_list_gen =
    Gen.(
      let* n = int_range 2 15 in
      let* edges = list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
  in
  [
    Test.make ~name:"pairs are consistent with edges" ~count:80 (make edge_list_gen)
      (fun (n, edges) ->
        let g = Graph.of_edges ~n edges in
        Array.for_all
          (fun (u, v) -> u < v && (Graph.has_edge g u v || Graph.has_edge g v u))
          (Graph.pairs g));
    Test.make ~name:"undirected degree counts pairs" ~count:80 (make edge_list_gen)
      (fun (n, edges) ->
        let g = Graph.of_edges ~n edges in
        let total = ref 0 in
        for u = 0 to n - 1 do
          total := !total + Graph.degree_undirected g u
        done;
        !total = 2 * Array.length (Graph.pairs g));
    Test.make ~name:"subgraph preserves adjacency" ~count:60 (make edge_list_gen)
      (fun (n, edges) ->
        let g = Graph.of_edges ~n edges in
        let keep = Array.init ((n / 2) + 1) (fun i -> i) in
        let sub, mapping = Graph.subgraph g keep in
        Array.for_all
          (fun (a, b) -> Graph.has_edge g mapping.(a) mapping.(b))
          (Graph.edges sub));
  ]

let suite =
  [
    Alcotest.test_case "of_edges basics" `Quick test_of_edges_basics;
    Alcotest.test_case "of_edges validation" `Quick test_of_edges_rejects_bad;
    Alcotest.test_case "density" `Quick test_density;
    Alcotest.test_case "induced density" `Quick test_induced_density;
    Alcotest.test_case "ego + subgraph" `Quick test_ego_and_subgraph;
    Alcotest.test_case "connected components" `Quick test_connected_components;
    Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
    Alcotest.test_case "erdos-renyi directed" `Quick test_erdos_renyi_directed;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
    Alcotest.test_case "planted partition" `Quick test_planted_partition;
    Alcotest.test_case "random-walk sample" `Quick test_random_walk_sample;
    Alcotest.test_case "label propagation" `Quick test_label_propagation;
    Alcotest.test_case "greedy modularity" `Quick test_greedy_modularity;
    Alcotest.test_case "modularity bounds" `Quick test_modularity_bounds;
    Alcotest.test_case "balanced partition" `Quick test_balanced_partition;
    Alcotest.test_case "groups of labels" `Quick test_groups_of_labels;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
