(* Tests for the baseline recommenders and the exact solvers. *)

module Rng = Svgic_util.Rng
module Instance = Svgic.Instance
module Config = Svgic.Config
module Baselines = Svgic.Baselines
module Example = Svgic.Example_paper

let test_personalized_is_topk () =
  let inst = Example.instance () in
  let cfg = Baselines.personalized inst in
  (* Alice's top-3: c5 (1.0), c2 (0.85), c1 (0.8). *)
  Alcotest.(check (array int)) "Alice row"
    [| Example.sp_camera; Example.dslr; Example.tripod |]
    (Config.row cfg Example.alice);
  (* Dave's top-3: c4 (1.0), c5 (0.95), c3 (0.3). *)
  Alcotest.(check (array int)) "Dave row"
    [| Example.memory_card; Example.sp_camera; Example.psd |]
    (Config.row cfg Example.dave)

let test_personalized_optimal_at_lambda_zero () =
  let rng = Rng.create 200 in
  let inst = Helpers.random_instance ~lambda:0.0 rng ~n:4 ~m:5 ~k:2 in
  let per = Baselines.personalized inst in
  let exhaustive = Baselines.exhaustive inst in
  Alcotest.(check (float 1e-9)) "PER optimal when lambda = 0"
    (Config.total_utility inst exhaustive)
    (Config.total_utility inst per)

let test_group_bundle_identical_rows () =
  let inst = Example.instance () in
  let cfg = Baselines.group inst in
  let first = Config.row cfg 0 in
  for u = 1 to 3 do
    Alcotest.(check (array int)) "identical rows" first (Config.row cfg u)
  done

let test_group_bundle_scores () =
  (* Aggregate scores (Example 5's discussion, paper-scaled): c5 = 3.35,
     c1 = 2.6, and a tie c2 = c4 = 2.4 for the third place; the paper's
     Table 9 shows c2, but either resolution is optimal (the totals
     coincide at 8.35, checked in test_core). *)
  let inst = Example.instance () in
  let bundle = Baselines.group_for_users ~fairness:0.0 inst [| 0; 1; 2; 3 |] in
  let sorted = Array.to_list bundle |> List.sort compare in
  Alcotest.(check bool) "bundle = {c5, c1} + (c2 | c4)" true
    (sorted = [ Example.tripod; Example.dslr; Example.sp_camera ]
    || sorted = [ Example.tripod; Example.memory_card; Example.sp_camera ])

let test_fairness_changes_bundle () =
  (* A fairness weight must be able to change the selection: construct
     an instance where the aggregate favourite is hated by one user. *)
  let g = Svgic_graph.Graph.of_edges ~n:3 [] in
  let pref = [| [| 1.0; 0.6 |]; [| 1.0; 0.6 |]; [| 0.0; 0.6 |] |] in
  let inst =
    Instance.create ~graph:g ~m:2 ~k:1 ~lambda:0.5 ~pref ~tau:(fun _ _ _ -> 0.0)
  in
  let plain = Baselines.group_for_users ~fairness:0.0 inst [| 0; 1; 2 |] in
  let fair = Baselines.group_for_users ~fairness:0.9 inst [| 0; 1; 2 |] in
  Alcotest.(check (array int)) "aggregate picks item 0" [| 0 |] plain;
  Alcotest.(check (array int)) "fair picks item 1" [| 1 |] fair

let test_subgroup_by_preference_clusters () =
  let rng = Rng.create 201 in
  let inst = Example.instance () in
  let labels = Baselines.preference_clusters ~clusters:2 rng inst in
  Alcotest.(check int) "labels per user" 4 (Array.length labels);
  (* Alice and Bob share tastes (c1, c2 high), Charlie and Dave share
     (c3, c4 high): k-means should find that split. *)
  Alcotest.(check int) "A with B" labels.(Example.alice) labels.(Example.bob);
  Alcotest.(check int) "C with D" labels.(Example.charlie) labels.(Example.dave);
  Alcotest.(check bool) "two clusters" true
    (labels.(Example.alice) <> labels.(Example.charlie))

let test_grf_matches_paper_value () =
  let rng = Rng.create 202 in
  let inst = Example.instance () in
  let cfg = Baselines.subgroup_by_preference ~clusters:2 rng inst in
  Alcotest.(check (float 1e-9)) "GRF = 8.7" Example.subgroup_preference_value
    (Helpers.paper_value inst cfg)

let test_exhaustive_agrees_with_ip () =
  let rng = Rng.create 203 in
  for _ = 1 to 3 do
    let inst = Helpers.random_instance rng ~n:3 ~m:4 ~k:2 in
    let brute = Baselines.exhaustive inst in
    let cfg, result = Baselines.exact_ip inst in
    Alcotest.(check bool) "IP proved" true result.proved_optimal;
    match cfg with
    | Some cfg ->
        Alcotest.(check (float 1e-5)) "same optimum"
          (Config.total_utility inst brute)
          (Config.total_utility inst cfg)
    | None -> Alcotest.fail "no incumbent"
  done

let test_exhaustive_guard () =
  let rng = Rng.create 204 in
  let inst = Helpers.random_instance rng ~n:8 ~m:8 ~k:4 in
  Alcotest.check_raises "guard trips"
    (Invalid_argument "Baselines.exhaustive: search space too large") (fun () ->
      ignore (Baselines.exhaustive inst))

let test_ip_dominates_heuristics () =
  let rng = Rng.create 205 in
  let inst = Helpers.random_instance rng ~n:4 ~m:4 ~k:2 in
  let cfg, _ = Baselines.exact_ip inst in
  let ip_value =
    match cfg with
    | Some cfg -> Config.total_utility inst cfg
    | None -> Alcotest.fail "no incumbent"
  in
  List.iter
    (fun (name, cfg) ->
      let v = Config.total_utility inst cfg in
      Alcotest.(check bool)
        (Printf.sprintf "IP %.4f >= %s %.4f" ip_value name v)
        true
        (ip_value >= v -. 1e-6))
    [
      ("PER", Baselines.personalized inst);
      ("FMG", Baselines.group inst);
      ("SDP", Baselines.subgroup_by_friendship (Rng.create 1) inst);
      ("GRF", Baselines.subgroup_by_preference (Rng.create 1) inst);
    ]

let test_prepartition_structure () =
  let rng = Rng.create 206 in
  let inst = Helpers.random_instance rng ~n:9 ~m:6 ~k:2 in
  let cfg =
    Baselines.prepartition rng inst ~max_size:3 ~solver:(fun sub ->
        Baselines.group ~fairness:0.0 sub)
  in
  (match Config.validate inst (Config.assignment cfg) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid: %s" msg);
  (* Every user got a full bundle; users in the same part share rows.
     A part has at most 3 users, so each row is shared by <= 3. *)
  let row_counts = Hashtbl.create 8 in
  for u = 0 to 8 do
    let key = Array.to_list (Config.row cfg u) in
    Hashtbl.replace row_counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt row_counts key))
  done;
  Hashtbl.iter
    (fun _ count -> Alcotest.(check bool) "part size <= 3" true (count <= 3))
    row_counts

let suite =
  [
    Alcotest.test_case "personalized = top-k" `Quick test_personalized_is_topk;
    Alcotest.test_case "personalized optimal at λ=0" `Quick test_personalized_optimal_at_lambda_zero;
    Alcotest.test_case "group identical rows" `Quick test_group_bundle_identical_rows;
    Alcotest.test_case "group bundle scores" `Quick test_group_bundle_scores;
    Alcotest.test_case "fairness changes bundle" `Quick test_fairness_changes_bundle;
    Alcotest.test_case "preference clusters" `Quick test_subgroup_by_preference_clusters;
    Alcotest.test_case "GRF paper value" `Quick test_grf_matches_paper_value;
    Alcotest.test_case "exhaustive vs IP" `Slow test_exhaustive_agrees_with_ip;
    Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
    Alcotest.test_case "IP dominates heuristics" `Slow test_ip_dominates_heuristics;
    Alcotest.test_case "prepartition structure" `Quick test_prepartition_structure;
  ]
