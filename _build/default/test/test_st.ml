(* Tests for SVGIC-ST: indirect co-display, teleportation discount,
   and the subgroup size constraint. *)

module Rng = Svgic_util.Rng
module Instance = Svgic.Instance
module Config = Svgic.Config
module St = Svgic.St
module Example = Svgic.Example_paper

let solve inst = Svgic.Relaxation.solve ~backend:Svgic.Relaxation.Exact_simplex inst

let test_dtel_zero_matches_plain () =
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  Alcotest.(check (float 1e-9)) "dtel = 0"
    (Config.total_utility inst cfg)
    (St.total_utility inst ~dtel:0.0 cfg)

let test_indirect_codisplay_counted () =
  (* Alice sees the DSLR at slot 3 while Bob sees it at slot 1 in the
     paper's optimal configuration: τ(A,B,c2) + τ(B,A,c2) = 0.1 should
     appear, discounted, in the ST objective. *)
  let inst = Example.instance () in
  let cfg = Example.optimal_config inst in
  let plain = St.total_utility inst ~dtel:0.0 cfg in
  let with_tel = St.total_utility inst ~dtel:1.0 cfg in
  Alcotest.(check bool) "teleportation adds utility" true (with_tel > plain);
  (* Monotone in dtel. *)
  let mid = St.total_utility inst ~dtel:0.5 cfg in
  Alcotest.(check bool) "monotone" true (plain <= mid && mid <= with_tel);
  (* Linear in dtel: mid is the average of the two extremes. *)
  Alcotest.(check (float 1e-9)) "linear" ((plain +. with_tel) /. 2.0) mid

let test_indirect_exact_value () =
  (* Two users, two items, two slots, one edge; p = 0. A configuration
     where both see item 0 at different slots earns exactly
     dtel·(τ(0,1,0)+τ(1,0,0))·λ. *)
  let g = Svgic_graph.Graph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  let pref = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let inst =
    Instance.create ~graph:g ~m:2 ~k:2 ~lambda:0.5 ~pref ~tau:(fun _ _ c ->
        if c = 0 then 0.8 else 0.0)
  in
  let cfg = Config.make inst [| [| 0; 1 |]; [| 1; 0 |] |] in
  Alcotest.(check (float 1e-9)) "indirect only" (0.5 *. 0.5 *. 1.6)
    (St.total_utility inst ~dtel:0.5 cfg);
  let aligned = Config.make inst [| [| 0; 1 |]; [| 0; 1 |] |] in
  Alcotest.(check (float 1e-9)) "direct full" (0.5 *. 1.6)
    (St.total_utility inst ~dtel:0.5 aligned)

let test_violations_counting () =
  let inst = Example.instance () in
  let cfg = Svgic.Baselines.group ~fairness:0.0 inst in
  (* Whole group of 4 at every slot; cap 3 -> 1 excess user and 1
     oversized subgroup per slot. *)
  let excess, oversized = St.violations inst ~m_cap:3 cfg in
  Alcotest.(check int) "excess users" 3 excess;
  Alcotest.(check int) "oversized subgroups" 3 oversized;
  Alcotest.(check bool) "infeasible" false (St.feasible inst ~m_cap:3 cfg);
  Alcotest.(check bool) "feasible at 4" true (St.feasible inst ~m_cap:4 cfg)

let test_avg_st_never_violates () =
  let rng = Rng.create 400 in
  for _ = 1 to 6 do
    let n = 5 + Rng.int rng 4 in
    let m = 8 + Rng.int rng 4 in
    let k = 1 + Rng.int rng 2 in
    let m_cap = 2 + Rng.int rng 2 in
    let inst = Helpers.random_instance rng ~n ~m ~k in
    let relax = solve inst in
    let cfg = St.avg rng inst relax ~m_cap in
    Alcotest.(check bool) "feasible" true (St.feasible inst ~m_cap cfg);
    match Config.validate inst (Config.assignment cfg) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "invalid: %s" msg
  done

let test_avg_d_st_never_violates () =
  let rng = Rng.create 401 in
  for _ = 1 to 4 do
    let inst = Helpers.random_instance rng ~n:6 ~m:9 ~k:2 in
    let relax = solve inst in
    let cfg = St.avg_d inst relax ~m_cap:2 in
    Alcotest.(check bool) "feasible" true (St.feasible inst ~m_cap:2 cfg);
    match Config.validate inst (Config.assignment cfg) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "invalid: %s" msg
  done

let test_cap_one_degenerates_to_personal () =
  (* With M = 1 nobody shares a subgroup: the result is a fully
     personalized display (no direct co-display at all). *)
  let rng = Rng.create 402 in
  let inst = Helpers.random_instance rng ~n:4 ~m:8 ~k:2 in
  let relax = solve inst in
  let cfg = St.avg rng inst relax ~m_cap:1 in
  Alcotest.(check (float 1e-9)) "no co-display" 0.0
    (Svgic.Metrics.codisplay_rate inst cfg)

let test_prepartition_reduces_violations () =
  (* The "-P" wrapper should reduce (not necessarily eliminate) the
     size-cap violations of the group approach. *)
  let rng = Rng.create 403 in
  let inst = Helpers.random_instance rng ~n:9 ~m:8 ~k:2 in
  let m_cap = 3 in
  let plain = Svgic.Baselines.group ~fairness:0.0 inst in
  let pre =
    Svgic.Baselines.prepartition rng inst ~max_size:m_cap ~solver:(fun sub ->
        Svgic.Baselines.group ~fairness:0.0 sub)
  in
  let excess_plain, _ = St.violations inst ~m_cap plain in
  let excess_pre, _ = St.violations inst ~m_cap pre in
  Alcotest.(check bool)
    (Printf.sprintf "prepartition %d <= plain %d" excess_pre excess_plain)
    true (excess_pre <= excess_plain);
  Alcotest.(check bool) "plain violates" true (excess_plain > 0)

let suite =
  [
    Alcotest.test_case "dtel=0 equals plain" `Quick test_dtel_zero_matches_plain;
    Alcotest.test_case "indirect co-display counted" `Quick test_indirect_codisplay_counted;
    Alcotest.test_case "indirect exact value" `Quick test_indirect_exact_value;
    Alcotest.test_case "violation counting" `Quick test_violations_counting;
    Alcotest.test_case "AVG-ST feasibility" `Quick test_avg_st_never_violates;
    Alcotest.test_case "AVG-D-ST feasibility" `Quick test_avg_d_st_never_violates;
    Alcotest.test_case "cap 1 = personalized" `Quick test_cap_one_degenerates_to_personal;
    Alcotest.test_case "prepartition reduces violations" `Quick test_prepartition_reduces_violations;
  ]
