(* Command-line front end: sample a synthetic dataset and run the
   SVGIC algorithms on it.

     svgic_cli solve   --dataset yelp --n 40 --k 6 --method avg-d
     svgic_cli compare --dataset timik --n 30 --cap 5
*)

open Cmdliner

module Rng = Svgic_util.Rng
module Datasets = Svgic_data.Datasets
module Metrics = Svgic.Metrics
module Config = Svgic.Config

let dataset_conv =
  let parse = function
    | "timik" -> Ok Datasets.Timik
    | "epinions" -> Ok Datasets.Epinions
    | "yelp" -> Ok Datasets.Yelp
    | other -> Error (`Msg (Printf.sprintf "unknown dataset %S" other))
  in
  let print ppf preset = Format.pp_print_string ppf (Datasets.name preset) in
  Arg.conv (parse, print)

let dataset_arg =
  Arg.(value & opt dataset_conv Datasets.Timik & info [ "dataset"; "d" ] ~doc:"timik | epinions | yelp")

let n_arg = Arg.(value & opt int 30 & info [ "n" ] ~doc:"number of shoppers")
let m_arg = Arg.(value & opt int 60 & info [ "m" ] ~doc:"number of items")
let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~doc:"number of display slots")
let lambda_arg = Arg.(value & opt float 0.5 & info [ "lambda" ] ~doc:"social weight in [0,1]")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"random seed")

let cap_arg =
  Arg.(value & opt (some int) None & info [ "cap" ] ~doc:"SVGIC-ST subgroup size cap M")

let method_arg =
  Arg.(
    value
    & opt string "avg"
    & info [ "method" ] ~doc:"avg | avg-d | per | fmg | sdp | grf | ip")

let shards_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shards" ]
        ~doc:
          "Run avg/avg-d through the community-sharded pipeline: 'components', \
           'modularity', or an integer (balanced parts)")

let load_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~doc:"load the instance from a file written by 'generate'")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ]
        ~doc:
          "Wall-clock budget for the solve, in seconds. On expiry the \
           degradation ladder returns the best feasible configuration reached \
           (down to the top-k greedy floor) instead of running to optimality.")

let on_fault_conv =
  let parse = function
    | "isolate" -> Ok Svgic.Shard.Isolate
    | "raise" -> Ok Svgic.Shard.Raise
    | other -> Error (`Msg (Printf.sprintf "unknown --on-fault value %S" other))
  in
  let print ppf = function
    | Svgic.Shard.Isolate -> Format.pp_print_string ppf "isolate"
    | Svgic.Shard.Raise -> Format.pp_print_string ppf "raise"
  in
  Arg.conv (parse, print)

let on_fault_arg =
  Arg.(
    value
    & opt on_fault_conv Svgic.Shard.Isolate
    & info [ "on-fault" ]
        ~doc:
          "isolate: a failing shard degrades to its greedy floor and is \
           reported; raise: shard failures abort the run (fail-fast)")

let out_arg =
  Arg.(value & opt string "instance.svgic" & info [ "out"; "o" ] ~doc:"output path")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:
          "Print solver internals: when the relaxation ran on the revised \
           simplex, its pivot count and basis-factorization counters \
           (refactorizations, factor fill, update etas)")

let make_instance ?load preset seed ~n ~m ~k ~lambda =
  match load with
  | Some path -> (
      match Svgic.Serialize.instance_of_string (Svgic.Serialize.read_file path) with
      | Ok inst -> inst
      | Error msg ->
          Printf.eprintf "cannot load %s: %s\n" path msg;
          exit 1)
  | None ->
      let rng = Rng.create seed in
      Datasets.make preset rng ~n ~m ~k ~lambda

let parse_labelling = function
  | "components" -> Ok Svgic.Shard.Components
  | "modularity" -> Ok Svgic.Shard.Modularity
  | s -> (
      match int_of_string_opt s with
      | Some parts when parts >= 1 -> Ok (Svgic.Shard.Balanced parts)
      | Some _ | None -> Error (Printf.sprintf "bad --shards value %S" s))

let run_sharded spec rounding ?cap ?token ~on_fault seed inst =
  match parse_labelling spec with
  | Error _ as e -> e
  | Ok labelling ->
      let part =
        Svgic.Shard.partition ~rng:(Rng.create seed) ~labelling inst
      in
      let res =
        Svgic.Shard.solve_round ?size_cap:cap ?token ~on_fault ~rounding
          (Rng.create (seed + 1))
          part
      in
      Printf.printf
        "sharded pipeline   : %d shards, cut mass %.4f, certified >= %.4f, \
         repair gain %.4f\n"
        (Array.length part.Svgic.Shard.shards)
        res.Svgic.Shard.cut_mass res.Svgic.Shard.bound
        res.Svgic.Shard.repair_gain;
      let degraded =
        res.Svgic.Shard.degraded |> Array.to_list
        |> List.mapi (fun i d -> (i, d))
        |> List.filter snd |> List.map fst
      in
      (match degraded with
      | [] -> ()
      | ids ->
          Printf.printf
            "degraded shards    : %d of %d [%s] (greedy-floor fallback; \
             certificate still holds)\n"
            (List.length ids)
            (Array.length res.Svgic.Shard.degraded)
            (String.concat "," (List.map string_of_int ids)));
      Ok res.Svgic.Shard.config

let warn_degraded relax =
  if relax.Svgic.Relaxation.degraded then
    Printf.printf
      "note               : degraded solve (deadline or numerical fallback); \
       result is feasible but not certified optimal\n"

(* --verbose: the relaxation's simplex counters, when the revised
   engine produced the point (the dense tableau, Frank-Wolfe and
   greedy paths carry none). *)
let report_lp_stats verbose relax =
  if verbose then
    match relax.Svgic.Relaxation.lp_stats with
    | Some
        {
          Svgic.Relaxation.pivots;
          factor;
          nodes;
          fw_iterations;
          max_depth;
          gap_fathoms;
          warm_starts;
        } ->
        Printf.printf
          "lp engine          : %d pivots, %d refactorizations, fill %d nnz, \
           %d update etas (%.3f s refactorizing)\n"
          pivots factor.Svgic_lp.Revised_simplex.refactorizations
          factor.Svgic_lp.Revised_simplex.fill_nnz
          factor.Svgic_lp.Revised_simplex.eta_appends
          factor.Svgic_lp.Revised_simplex.factor_s;
        if nodes > 1 then
          Printf.printf
            "branch-and-bound   : %d nodes (max depth %d), %d fw iterations, \
             %d gap fathoms, %d warm starts\n"
            nodes max_depth fw_iterations gap_fathoms warm_starts
    | None ->
        Printf.printf
          "lp engine          : no revised-simplex counters on this path\n"

let run_method name ?cap ?shards ?token ?(on_fault = Svgic.Shard.Isolate)
    ?(verbose = false) seed inst =
  let rng = Rng.create (seed + 1) in
  match (name, shards) with
  | "avg", Some spec ->
      run_sharded spec
        (Svgic.Shard.Avg { repeats = 9; advanced_sampling = true })
        ?cap ?token ~on_fault seed inst
  | "avg-d", Some spec ->
      run_sharded spec (Svgic.Shard.Avg_d { r = None }) ?cap ?token ~on_fault
        seed inst
  | "avg", None ->
      let relax = Svgic.Relaxation.solve ?token inst in
      warn_degraded relax;
      report_lp_stats verbose relax;
      Ok (Svgic.Algorithms.avg_best_of ~repeats:9 ?size_cap:cap rng inst relax)
  | "avg-d", None ->
      let relax = Svgic.Relaxation.solve ?token inst in
      warn_degraded relax;
      report_lp_stats verbose relax;
      Ok (Svgic.Algorithms.avg_d ?size_cap:cap inst relax)
  | _, Some _ ->
      Error (Printf.sprintf "--shards only applies to avg/avg-d, not %S" name)
  | "per", None -> Ok (Svgic.Baselines.personalized inst)
  | "fmg", None -> Ok (Svgic.Baselines.group inst)
  | "sdp", None -> Ok (Svgic.Baselines.subgroup_by_friendship rng inst)
  | "grf", None -> Ok (Svgic.Baselines.subgroup_by_preference rng inst)
  | "ip", None -> (
      let options =
        {
          Svgic_lp.Branch_bound.default_options with
          time_budget_s = Some 60.0;
        }
      in
      match Svgic.Baselines.exact_ip ~options inst with
      | Some cfg, _ -> Ok cfg
      | None, _ -> Error "IP found no incumbent within the budget")
  | other, None -> Error (Printf.sprintf "unknown method %S" other)

let report inst cfg =
  let pref, social = Metrics.utility_split inst cfg in
  Printf.printf "total SAVG utility : %.4f\n" (pref +. social);
  Printf.printf "  preference part  : %.4f\n" pref;
  Printf.printf "  social part      : %.4f\n" social;
  Printf.printf "co-display rate    : %.1f%%\n" (100.0 *. Metrics.codisplay_rate inst cfg);
  Printf.printf "alone rate         : %.1f%%\n" (100.0 *. Metrics.alone_rate inst cfg);
  let intra, _ = Metrics.intra_inter_pct inst cfg in
  Printf.printf "intra-subgroup     : %.1f%%\n" (100.0 *. intra);
  Printf.printf "normalized density : %.3f\n" (Metrics.normalized_density inst cfg);
  Printf.printf "mean regret        : %.3f\n"
    (Svgic_util.Stats.mean (Metrics.regret_ratios inst cfg))

let generate_cmd =
  let run preset n m k lambda seed out =
    let inst = make_instance preset seed ~n ~m ~k ~lambda in
    Svgic.Serialize.write_file out (Svgic.Serialize.instance_to_string inst);
    Printf.printf "wrote %s-like instance (n=%d m=%d k=%d) to %s\n"
      (Datasets.name preset) n m k out
  in
  Cmd.v (Cmd.info "generate" ~doc:"Sample an instance and write it to a file")
    Term.(
      const run $ dataset_arg $ n_arg $ m_arg $ k_arg $ lambda_arg $ seed_arg
      $ out_arg)

let solve_cmd =
  let run preset n m k lambda seed method_name cap shards load deadline
      on_fault verbose =
    let inst = make_instance ?load preset seed ~n ~m ~k ~lambda in
    Printf.printf "%s instance: n=%d m=%d k=%d lambda=%.2f\n\n"
      (match load with Some path -> path | None -> Datasets.name preset ^ "-like")
      (Svgic.Instance.n inst) (Svgic.Instance.m inst) (Svgic.Instance.k inst)
      (Svgic.Instance.lambda inst);
    let token =
      Option.map (fun s -> Svgic_util.Supervise.create ~deadline_s:s ()) deadline
    in
    match
      run_method method_name ?cap ?shards ?token ~on_fault ~verbose seed inst
    with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok cfg ->
        report inst cfg;
        (match cap with
        | Some m_cap ->
            let excess, oversized = Svgic.St.violations inst ~m_cap cfg in
            Printf.printf "size-cap violations: %d users in %d subgroups\n" excess
              oversized
        | None -> ());
        print_newline ();
        let slots_to_show = min 3 k in
        for s = 0 to slots_to_show - 1 do
          Printf.printf "slot %d subgroups:\n" (s + 1);
          Array.iter
            (fun members ->
              Printf.printf "  item %3d -> {%s}\n"
                (Config.item cfg ~user:members.(0) ~slot:s)
                (String.concat ","
                   (List.map string_of_int (Array.to_list members))))
            (Config.subgroups_at_slot cfg inst s)
        done
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve one instance with a chosen method")
    Term.(
      const run $ dataset_arg $ n_arg $ m_arg $ k_arg $ lambda_arg $ seed_arg
      $ method_arg $ cap_arg $ shards_arg $ load_arg $ deadline_arg
      $ on_fault_arg $ verbose_arg)

let compare_cmd =
  let run preset n m k lambda seed cap =
    let inst = make_instance preset seed ~n ~m ~k ~lambda in
    Printf.printf "%s-like instance: n=%d m=%d k=%d lambda=%.2f (seed %d)\n\n"
      (Datasets.name preset) n m k lambda seed;
    Printf.printf "%-8s %10s %10s %10s %10s %8s\n" "method" "total" "pref" "social"
      "codisp%" "alone%";
    List.iter
      (fun name ->
        match run_method name ?cap seed inst with
        | Error msg -> Printf.printf "%-8s failed: %s\n" name msg
        | Ok cfg ->
            let pref, social = Metrics.utility_split inst cfg in
            Printf.printf "%-8s %10.3f %10.3f %10.3f %9.1f%% %7.1f%%\n" name
              (pref +. social) pref social
              (100.0 *. Metrics.codisplay_rate inst cfg)
              (100.0 *. Metrics.alone_rate inst cfg))
      [ "avg"; "avg-d"; "per"; "fmg"; "sdp"; "grf" ]
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare all methods on one instance")
    Term.(
      const run $ dataset_arg $ n_arg $ m_arg $ k_arg $ lambda_arg $ seed_arg
      $ cap_arg)

(* -------------------------------------------------------------------
   serve: replay a newline-delimited event trace through the online
   engine (Serve), one stats line per tick. *)

let events_arg =
  Arg.(
    value
    & opt string "-"
    & info [ "events"; "e" ]
        ~doc:
          "Event trace to replay ('-' reads stdin). Lines: 'tick', 'pref u c \
           v', 'tau u v c x', 'leave u', 'join p0,...,pm-1 \
           [friend:tau_out:tau_in ...]'; '#' comments and blank lines are \
           skipped. A trailing batch without a final 'tick' is flushed at \
           end of stream.")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ]
        ~doc:
          "Per-tick latency budget in milliseconds. A shard whose warm \
           re-solve overruns it degrades down the ladder (certified \
           Frank-Wolfe, then the greedy floor) instead of missing the tick.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Maintain the upper bracket too: touched shards re-certify via the \
           integer selection bound, so each tick reports objective <= upper \
           (printed 'inf' while any shard's certificate is degraded)")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Solver fan-out cap for touched shards. Replay is bit-identical \
           for every value (per-tick Rng.split_n streams, reduce by index).")

let repair_arg =
  Arg.(
    value & opt int 2
    & info [ "repair-passes" ] ~doc:"per-tick cut-repair sweeps over touched cut endpoints")

let serve_labelling_arg =
  Arg.(
    value
    & opt string "components"
    & info [ "shards" ]
        ~doc:"partition labelling: 'components', 'modularity', or an integer (balanced parts)")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ]
        ~doc:
          "Durability directory: append every accepted event and tick \
           boundary to $(i,DIR)/wal.svgic and checkpoint the full solve \
           state there, so 'recover' can rebuild the exact state after a \
           crash.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ]
        ~doc:"ticks between checkpoints (with --wal; min 1)")

let fsync_conv =
  let parse = function
    | "every_event" -> Ok Svgic.Wal.Every_event
    | "every_tick" -> Ok Svgic.Wal.Every_tick
    | "off" -> Ok Svgic.Wal.Off
    | other -> Error (`Msg (Printf.sprintf "unknown --fsync value %S" other))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Svgic.Wal.Every_event -> "every_event"
      | Svgic.Wal.Every_tick -> "every_tick"
      | Svgic.Wal.Off -> "off")
  in
  Arg.conv (parse, print)

let fsync_arg =
  Arg.(
    value
    & opt fsync_conv Svgic.Wal.Every_tick
    & info [ "fsync" ]
        ~doc:
          "WAL fsync policy (with --wal): 'every_event' survives any crash, \
           'every_tick' may lose events of the crashed tick but never a \
           committed tick, 'off' leaves durability to the OS page cache")

let retain_arg =
  Arg.(
    value & opt int 2
    & info [ "retain" ] ~doc:"checkpoints kept on disk (with --wal; min 1)")

let fingerprint_arg =
  Arg.(
    value & flag
    & info [ "fingerprint" ]
        ~doc:
          "Print the CRC-32 state fingerprint on exit — equal fingerprints \
           mean bit-identical solve state (the crash-recovery tests compare \
           a recovered engine against an uninterrupted run with this)")

let percentile sorted q =
  let len = Array.length sorted in
  if len = 0 then nan
  else sorted.(min (len - 1) (int_of_float (ceil (q *. float_of_int len)) - 1))

let print_tick_stats (s : Svgic.Serve.tick_stats) =
  Printf.printf
    "tick %4d: events %d applied %d dropped %d | shards %d warm %d degraded \
     %d%s | %.2f ms | obj %.4f bound %.4f%s\n"
    s.Svgic.Serve.tick s.events_seen s.events_applied s.events_dropped
    s.shards_touched s.warm_hits s.degraded
    (if s.structural then " structural" else "")
    (1e3 *. s.elapsed_s) s.objective s.bound
    (match s.upper with
    | None -> ""
    | Some u when u = infinity -> " upper inf"
    | Some u -> Printf.sprintf " upper %.4f" u);
  flush stdout

(* Shared by serve and recover: stream a trace into the engine, one
   stats line per tick, then the run summary. [skip_events] and
   [skip_ticks] let recover fast-forward past the prefix the crashed
   run already consumed (counted by events_total / tick_count; the
   skip assumes the consumed prefix had no dropped events, which the
   live run reports on stderr). *)
let replay_trace t ~events ~skip_events ~skip_ticks =
  let ic = if events = "-" then stdin else open_in events in
  let ticks = ref [] in
  let do_tick () =
    let s = Svgic.Serve.tick t in
    ticks := s :: !ticks;
    print_tick_stats s
  in
  let ev_skip = ref skip_events and tk_skip = ref skip_ticks in
  (try
     let lineno = ref 0 in
     (try
        while true do
          let raw = input_line ic in
          incr lineno;
          match Svgic.Serve.parse_line raw with
          | Ok Svgic.Serve.Line_blank -> ()
          | Ok Svgic.Serve.Line_tick ->
              if !tk_skip > 0 then decr tk_skip else do_tick ()
          | Ok (Svgic.Serve.Line_event ev) ->
              if !ev_skip > 0 then decr ev_skip
              else ignore (Svgic.Serve.submit t ev : int option)
          | Error msg ->
              Printf.eprintf "%s:%d: %s\n" events !lineno msg;
              exit 1
        done
      with End_of_file -> ());
     if Svgic.Serve.pending_events t > 0 then do_tick ()
   with e ->
     if events <> "-" then close_in_noerr ic;
     raise e);
  if events <> "-" then close_in ic;
  let ticks = Array.of_list (List.rev !ticks) in
  let times = Array.map (fun s -> s.Svgic.Serve.elapsed_s) ticks in
  Array.sort compare times;
  let sum f = Array.fold_left (fun a s -> a + f s) 0 ticks in
  Printf.printf
    "\nsummary: %d ticks, %d events applied (%d dropped), %d shard \
     solves (%d warm, %d degraded)\n"
    (Array.length ticks)
    (sum (fun s -> s.Svgic.Serve.events_applied))
    (sum (fun s -> s.Svgic.Serve.events_dropped))
    (sum (fun s -> s.Svgic.Serve.shards_touched))
    (sum (fun s -> s.Svgic.Serve.warm_hits))
    (sum (fun s -> s.Svgic.Serve.degraded));
  if Array.length times > 0 then
    Printf.printf "tick latency: p50 %.2f ms, p99 %.2f ms\n"
      (1e3 *. percentile times 0.50)
      (1e3 *. percentile times 0.99);
  Printf.printf "final bracket: %.4f <= objective %.4f%s\n"
    (Svgic.Serve.bound t) (Svgic.Serve.objective t)
    (match Svgic.Serve.upper t with
    | None -> ""
    | Some u when u = infinity -> " <= inf (certificate degraded)"
    | Some u -> Printf.sprintf " <= %.4f" u)

let print_fingerprint t =
  Printf.printf "fingerprint: %08x\n" (Svgic.Serve.fingerprint t)

let serve_cmd =
  let run preset n m k lambda seed load events shards deadline_ms certify
      domains repair_passes wal checkpoint_every fsync retain fingerprint =
    match parse_labelling shards with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok labelling ->
        let inst = make_instance ?load preset seed ~n ~m ~k ~lambda in
        let deadline_s = Option.map (fun ms -> ms /. 1e3) deadline_ms in
        let t =
          Svgic.Serve.create ~labelling ?deadline_s ~certify ?domains
            ~repair_passes (Rng.create seed) inst
        in
        Printf.printf "serving %d users in %d shards (seed %d)\n%!"
          (Svgic.Serve.num_users t) (Svgic.Serve.num_shards t) seed;
        (match wal with
        | None -> ()
        | Some dir ->
            Svgic.Serve.enable_durability t
              { Svgic.Serve.dir; fsync; checkpoint_every; retain };
            Printf.printf
              "durable: %s (fsync %s, checkpoint every %d, retain %d)\n%!" dir
              (match fsync with
              | Svgic.Wal.Every_event -> "every_event"
              | Svgic.Wal.Every_tick -> "every_tick"
              | Svgic.Wal.Off -> "off")
              checkpoint_every retain);
        replay_trace t ~events ~skip_events:0 ~skip_ticks:0;
        Svgic.Serve.disable_durability t;
        if fingerprint then print_fingerprint t
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay an event trace through the online serving engine")
    Term.(
      const run $ dataset_arg $ n_arg $ m_arg $ k_arg $ lambda_arg $ seed_arg
      $ load_arg $ events_arg $ serve_labelling_arg $ deadline_ms_arg
      $ certify_arg $ domains_arg $ repair_arg $ wal_arg $ checkpoint_every_arg
      $ fsync_arg $ retain_arg $ fingerprint_arg)

(* -------------------------------------------------------------------
   recover: rebuild the engine from the newest valid checkpoint + WAL
   suffix, audit it, and optionally resume the original trace. *)

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~doc:"durability directory written by 'serve --wal'")

let resume_events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events"; "e" ]
        ~doc:
          "Resume the original event trace ('-' reads stdin): the prefix the \
           crashed run already consumed — counted by the recovered engine's \
           accepted-event and tick totals — is skipped, and serving continues \
           from the first unconsumed line.")

let audit_repair_arg =
  Arg.(
    value & flag
    & info [ "repair" ]
        ~doc:
          "If the post-recovery audit fails, demote the failing shards to a \
           fresh re-solve and re-check instead of exiting nonzero")

let recover_cmd =
  let run dir events deadline_ms certify domains repair_passes fsync
      checkpoint_every retain repair fingerprint =
    let deadline_s = Option.map (fun ms -> ms /. 1e3) deadline_ms in
    match
      Svgic.Serve.recover ?deadline_s ~certify ?domains ~repair_passes ~fsync
        ~checkpoint_every ~retain ~dir ()
    with
    | Error msg ->
        Printf.eprintf "recover: %s\n" msg;
        exit 1
    | Ok (t, (r : Svgic.Serve.recovery)) ->
        List.iter
          (fun (path, err) ->
            Printf.printf "skipped corrupt checkpoint %s: %s\n"
              (Filename.basename path) err)
          r.checkpoints_skipped;
        Printf.printf
          "recovered %d users from %s (seqno %Ld): replayed %d events, %d \
           ticks%s\n%!"
          (Svgic.Serve.num_users t)
          (Filename.basename r.checkpoint_path)
          r.checkpoint_seqno r.replayed_events r.replayed_ticks
          (if r.torn_bytes > 0 then
             Printf.sprintf " (truncated %d-byte torn WAL tail)" r.torn_bytes
           else "");
        let a : Svgic.Serve.audit_report = Svgic.Serve.audit ~repair t in
        Printf.printf
          "audit: %s (cut drift %.3g, objective drift %.3g, bracket %s)%s\n%!"
          (if a.audit_ok then "ok" else "FAILED")
          a.cut_drift a.objective_drift
          (if a.bracket_ok then "ok" else "VIOLATED")
          (match a.repaired with
          | [] -> ""
          | l ->
              Printf.sprintf " — repaired shards [%s]"
                (String.concat "," (List.map string_of_int l)));
        if not a.audit_ok then (
          Svgic.Serve.disable_durability t;
          exit 1);
        (match events with
        | None ->
            Printf.printf
              "state: tick %d, %d events consumed, %d pending | %.4f <= \
               objective %.4f\n"
              (Svgic.Serve.tick_count t)
              (Svgic.Serve.events_total t)
              (Svgic.Serve.pending_events t)
              (Svgic.Serve.bound t) (Svgic.Serve.objective t)
        | Some path ->
            replay_trace t ~events:path
              ~skip_events:(Svgic.Serve.events_total t)
              ~skip_ticks:(Svgic.Serve.tick_count t));
        Svgic.Serve.disable_durability t;
        if fingerprint then print_fingerprint t
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a crashed serving engine from its WAL and checkpoints")
    Term.(
      const run $ dir_arg $ resume_events_arg $ deadline_ms_arg $ certify_arg
      $ domains_arg $ repair_arg $ fsync_arg $ checkpoint_every_arg
      $ retain_arg $ audit_repair_arg $ fingerprint_arg)

(* -------------------------------------------------------------------
   fsck: offline health report for a durability directory. *)

let fsck_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"durability directory to check")

let fsck_records_arg =
  Arg.(
    value & flag
    & info [ "records" ] ~doc:"print one line per CRC-valid WAL record")

let fsck_cmd =
  let run dir records =
    if not (Sys.file_exists dir && Sys.is_directory dir) then (
      Printf.eprintf "fsck: no such directory %s\n" dir;
      exit 1);
    let newest_valid = ref None in
    List.iter
      (fun (path, tick, seqno) ->
        match Svgic.Checkpoint.load path with
        | Ok _ ->
            newest_valid := Some (path, seqno);
            Printf.printf "checkpoint %s: ok (tick %d, seqno %Ld)\n"
              (Filename.basename path) tick seqno
        | Error err ->
            Printf.printf "checkpoint %s: CORRUPT — %s\n"
              (Filename.basename path) err)
      (Svgic.Checkpoint.list_files dir);
    let wal_path = Filename.concat dir "wal.svgic" in
    let wal_last =
      if not (Sys.file_exists wal_path) then (
        print_endline "wal: missing";
        0L)
      else
        let on_record seqno r =
          if records then
            Printf.printf "  record %Ld: %s\n" seqno
              (match r with
              | Svgic.Wal.Tick n -> Printf.sprintf "tick %d" n
              | Svgic.Wal.Event (Svgic.Wal.Join j) ->
                  Printf.sprintf "join (%d friends)"
                    (Array.length j.Svgic.Wal.jfriends)
              | Svgic.Wal.Event (Svgic.Wal.Leave u) ->
                  Printf.sprintf "leave %d" u
              | Svgic.Wal.Event (Svgic.Wal.Pref { user; item; value }) ->
                  Printf.sprintf "pref %d %d %.17g" user item value
              | Svgic.Wal.Event (Svgic.Wal.Tau { u; v; item; value }) ->
                  Printf.sprintf "tau %d %d %d %.17g" u v item value)
        in
        match Svgic.Wal.scan ~f:on_record wal_path with
        | Error err ->
            Printf.printf "wal: UNREADABLE — %s\n" err;
            0L
        | Ok (s : Svgic.Wal.scan) ->
            Printf.printf
              "wal: %d records ok (%d events, %d ticks), seqnos %Ld..%Ld, %d \
               of %d bytes valid\n"
              s.records s.events s.ticks s.first_seqno s.last_seqno
              s.valid_end s.file_size;
            (match s.torn with
            | None -> ()
            | Some why ->
                Printf.printf "wal: torn tail at byte %d (%d bytes) — %s\n"
                  s.valid_end (s.file_size - s.valid_end) why);
            s.last_seqno
    in
    match !newest_valid with
    | None ->
        print_endline "unrecoverable: no valid checkpoint";
        exit 1
    | Some (path, seqno) ->
        Printf.printf "recoverable: %s at seqno %Ld, WAL replay to seqno %Ld\n"
          (Filename.basename path) seqno
          (Int64.max seqno wal_last)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Check a durability directory: checkpoints, WAL health, torn tail")
    Term.(const run $ fsck_dir_arg $ fsck_records_arg)

let () =
  (* Deterministic fault injection is opt-in via SVGIC_FAULT_SEED (see
     DESIGN.md §5) — inert unless the variable is set. *)
  ignore (Svgic_util.Fault.init_from_env () : bool);
  let info = Cmd.info "svgic_cli" ~doc:"Social-aware VR group-item configuration" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; solve_cmd; compare_cmd; serve_cmd; recover_cmd; fsck_cmd ]))
